//! What peek-lock consumption costs over destructive dequeues: the same
//! enqueue/consume pair through three consume paths on one base algorithm
//! (`OptUnlinkedQueue`, the paper's best second-amendment queue):
//!
//! * `destructive` — the bare queue: `dequeue` removes the item, a
//!   consumer crash after it loses the message (the baseline every other
//!   row pays its overhead against),
//! * `peek-lock-process-crash` — `lease::LeasedQueue`: every grant and
//!   ack appends one CRC'd record to the sidecar ack log, page-cache
//!   durability (survives `kill -9`),
//! * `peek-lock-power-fail` — the same with `fdatasync` per append
//!   (survives power loss; the fsync dominates),
//! * `exactly-once` — `ack_exactly_once`: the ack rides a `ptm` redo-log
//!   transaction together with one consumer-side word write, so the
//!   commit point settles both atomically,
//! * `grouped-1` / `grouped-2` — `lease::GroupedQueue` with one and two
//!   consumer groups over rotating segmented ack logs: each pair pays a
//!   PEND fan-out append per group plus the GRANT/ACK appends of the
//!   consuming group, and rotation/retirement replace whole-file
//!   compaction (the two-group row is the fan-out cost, not competition).
//!
//! ```bash
//! cargo bench --bench lease_overhead           # full run
//! cargo bench --bench lease_overhead -- --test # CI smoke mode
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
use harness::ptm::FlushPolicy;
use lease::{ExactlyOnce, GroupConfig, GroupedQueue, LeaseConfig, LeasedQueue};
use pmem::{PmemPool, PoolConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use store::SyncPolicy;

const PREFILL: u64 = 1024;

fn base_queue() -> OptUnlinkedQueue {
    let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(64 << 20)));
    let queue = OptUnlinkedQueue::create(
        pool,
        QueueConfig {
            max_threads: 1,
            area_size: 4 << 20,
        },
    );
    for i in 0..PREFILL {
        queue.enqueue(0, i);
    }
    queue
}

fn log_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-lease-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench lease dir");
    dir
}

fn leased_queue(tag: &str, sync: SyncPolicy) -> (LeasedQueue<OptUnlinkedQueue>, PathBuf) {
    let dir = log_dir(tag);
    let queue = LeasedQueue::create(base_queue(), None, LeaseConfig::new(&dir).with_sync(sync))
        .expect("create leased queue");
    (queue, dir)
}

/// One enqueue + one consume through each path. The peek-lock rows pay
/// two ack-log appends per pair (GRANT + ACK) and amortised compactions;
/// the exactly-once row pays a redo-log transaction instead of the ACK.
fn consume_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease/consume_pair");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    {
        let queue = base_queue();
        group.bench_function(BenchmarkId::new("mode", "destructive"), |b| {
            b.iter(|| {
                queue.enqueue(0, 7);
                std::hint::black_box(queue.dequeue(0));
            })
        });
    }

    for (tag, sync) in [
        ("peek-lock-process-crash", SyncPolicy::ProcessCrash),
        ("peek-lock-power-fail", SyncPolicy::PowerFail),
    ] {
        let (queue, dir) = leased_queue(tag, sync);
        group.bench_function(BenchmarkId::new("mode", tag), |b| {
            b.iter(|| {
                queue.enqueue(0, 7);
                let lease = queue.dequeue(0).expect("prefilled queue grants");
                queue.ack(&lease).expect("ack");
            })
        });
        drop(queue);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The segmented-log rows: every consume-pair fans the item out to all
    // groups (one PEND append each) and the consuming group adds its
    // GRANT + ACK; the second group's copies just accumulate in its
    // pending set. Rotation is left at its default cadence so the
    // measured cost includes the amortised rotate/retire path.
    for groups in [1usize, 2] {
        let tag = format!("grouped-{groups}");
        let dir = log_dir(&tag);
        let names: Vec<String> = (0..groups).map(|g| format!("g{g}")).collect();
        let queue = Arc::new(
            GroupedQueue::create(
                base_queue(),
                vec![None; groups],
                GroupConfig::new(&dir, names),
            )
            .expect("create grouped queue"),
        );
        let consumer = queue.group("g0").expect("g0 handle");
        // Drain the prefill through g0 so the pending set starts empty and
        // the timed pair is enqueue → dispatch → grant → ack.
        while let Some(l) = consumer.dequeue(0) {
            consumer.ack(&l).expect("prefill ack");
        }
        group.bench_function(BenchmarkId::new("mode", &tag), |b| {
            b.iter(|| {
                queue.enqueue(0, 7);
                let lease = consumer.dequeue(0).expect("dispatched item grants");
                consumer.ack(&lease).expect("grouped ack");
            })
        });
        drop(consumer);
        drop(queue);
        let _ = std::fs::remove_dir_all(&dir);
    }

    {
        let (queue, dir) = leased_queue("exactly-once", SyncPolicy::ProcessCrash);
        let tx_pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(16 << 20)));
        let consumer_state = tx_pool.alloc_raw(64, 64);
        let eo = ExactlyOnce::create(Arc::clone(&tx_pool), FlushPolicy::BatchedCommit);
        let mut v = 0u64;
        group.bench_function(BenchmarkId::new("mode", "exactly-once"), |b| {
            b.iter(|| {
                queue.enqueue(0, 7);
                let lease = queue.dequeue(0).expect("prefilled queue grants");
                v = v.wrapping_add(1);
                queue
                    .ack_exactly_once(0, &lease, &eo, |tx| tx.write(consumer_state, v))
                    .expect("exactly-once ack");
            })
        });
        drop(queue);
        let _ = std::fs::remove_dir_all(&dir);
    }

    group.finish();
}

criterion_group!(benches, consume_pair);
criterion_main!(benches);
