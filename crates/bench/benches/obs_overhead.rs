//! Cost of the observability layer's hot-path instruments.
//!
//! Three prices matter, and this target measures all of them against the
//! same baseline loop:
//!
//! * **disabled**: the always-compiled no-op mirrors in [`obs::disabled`] —
//!   the shape a build with `--no-default-features` on `obs` compiles every
//!   real instrument down to. This must be indistinguishable from the bare
//!   loop: the disabled path's cost is the claim "observability off is
//!   free".
//! * **enabled counter**: one striped relaxed `fetch_add` through a
//!   resolved [`obs::LazyCounter`] — the per-op cost every instrumented
//!   enqueue/dequeue pays in a default build.
//! * **enabled histogram / timer**: two relaxed `fetch_add`s plus the
//!   `Instant::now()` pair for the `Timer` variant — what the store's
//!   growth/msync spans pay.

use criterion::{criterion_group, criterion_main, Criterion};
use obs::{LazyCounter, LazyHistogram};
use std::time::Duration;

static BENCH_COUNTER: LazyCounter = LazyCounter::new("bench.obs_overhead.counter");
static BENCH_HIST: LazyHistogram = LazyHistogram::new("bench.obs_overhead.hist");
static DISABLED_COUNTER: obs::disabled::Counter = obs::disabled::Counter::new("bench.disabled");
static DISABLED_HIST: obs::disabled::Histogram = obs::disabled::Histogram::new("bench.disabled");

fn obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // The baseline everything is compared against: the loop body with no
    // instrument at all, kept honest by black_box.
    let mut x = 0u64;
    group.bench_function("baseline/bare_loop", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(x);
        })
    });

    // The disabled mirrors must optimize to the bare loop: compare these
    // two numbers to verify "off is free".
    group.bench_function("disabled/counter_incr", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            DISABLED_COUNTER.incr();
            std::hint::black_box(x);
        })
    });
    group.bench_function("disabled/histogram_record", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            DISABLED_HIST.record(x);
            std::hint::black_box(x);
        })
    });

    // The enabled instruments, first touch outside the timing loop so the
    // lazy registry resolution is not what gets measured.
    BENCH_COUNTER.incr();
    group.bench_function("enabled/counter_incr", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            BENCH_COUNTER.incr();
            std::hint::black_box(x);
        })
    });
    BENCH_HIST.record(1);
    group.bench_function("enabled/histogram_record", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            BENCH_HIST.record(x & 0xFFFF);
            std::hint::black_box(x);
        })
    });
    group.bench_function("enabled/timer_drop", |b| {
        b.iter(|| {
            let _t = BENCH_HIST.start_timer();
            x = x.wrapping_add(1);
            std::hint::black_box(x);
        })
    });

    group.finish();
}

fn snapshot_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead/snapshot");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // Snapshot + export cost — the cold path `--json` emission pays once
    // per experiment object; belongs in the trajectory so a regression
    // into the hot path would be visible.
    BENCH_COUNTER.incr();
    BENCH_HIST.record(42);
    group.bench_function("snapshot_and_json", |b| {
        b.iter(|| {
            let snap = obs::snapshot();
            std::hint::black_box(obs::export::json(&snap));
        })
    });
    group.finish();
}

criterion_group!(benches, obs_overhead, snapshot_cost);
criterion_main!(benches);
