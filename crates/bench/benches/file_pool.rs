//! Sim vs. file persist costs: what a store+flush+fence round trip and a
//! full queue operation cost on each backend.
//!
//! Six pool variants:
//!
//! * `sim-zero` — simulated backend, zero modelled latency (the cost of
//!   the simulator's own bookkeeping),
//! * `sim-optane` — simulated backend with the Optane-like latency model
//!   the paper-facing figures use,
//! * `file-process-crash` — memory-mapped pool file, real CLWB/SFENCE only
//!   (durable against `kill -9`; the DAX discipline). Fixed-size
//!   (`grow_step == 0`), so every access takes the direct-pointer path
//!   with zero mapping synchronization,
//! * `file-power-fail` — pool file with `msync(MS_SYNC)` at every fence
//!   (durable against power loss on ordinary storage),
//! * `file-power-fail-coalesced` — the same msync discipline behind the
//!   group-commit layer (zero batch window): fences submit their dirty
//!   pages to a leader that msyncs merged contiguous runs. The delta
//!   against `file-power-fail` is the single-threaded cost/benefit of the
//!   batching protocol itself; the multi-producer win is measured by
//!   `harness fsweep`,
//! * `file-epoch` — elastic pool file (non-zero `grow_step`): every access
//!   pins the current mapping generation in a hazard slot. The delta
//!   against `file-process-crash` is the price of the lock-free pin.
//!
//! ```bash
//! cargo bench --bench file_pool           # full run
//! cargo bench --bench file_pool -- --test # CI smoke mode
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
use pmem::{PmemPool, PoolConfig};
use std::sync::Arc;
use std::time::Duration;
use store::{FileConfig, FilePool, SyncPolicy};

fn file_pool(tag: &str, sync: SyncPolicy, grow_step: usize) -> Arc<PmemPool> {
    file_pool_with(tag, sync, grow_step, None)
}

fn file_pool_with(
    tag: &str,
    sync: SyncPolicy,
    grow_step: usize,
    group_commit: Option<u64>,
) -> Arc<PmemPool> {
    let path =
        std::env::temp_dir().join(format!("bench-file-pool-{tag}-{}.pool", std::process::id()));
    let mut config = FileConfig::with_size(64 << 20)
        .with_sync(sync)
        .with_group_commit(group_commit);
    if grow_step > 0 {
        config = config.with_growth(grow_step);
    }
    let pool = FilePool::create(&path, config)
        .expect("create bench pool file")
        .into_pool();
    // Unlink immediately: the mapping keeps the file alive for the bench's
    // lifetime and nothing is left behind in $TMPDIR.
    #[cfg(unix)]
    let _ = std::fs::remove_file(&path);
    pool
}

fn pool_variants() -> Vec<(&'static str, Arc<PmemPool>)> {
    vec![
        (
            "sim-zero",
            Arc::new(PmemPool::new(PoolConfig::test_with_size(64 << 20))),
        ),
        (
            "sim-optane",
            Arc::new(PmemPool::new(PoolConfig::bench(64 << 20))),
        ),
        (
            "file-process-crash",
            file_pool("process-crash", SyncPolicy::ProcessCrash, 0),
        ),
        (
            "file-power-fail",
            file_pool("power-fail", SyncPolicy::PowerFail, 0),
        ),
        (
            "file-power-fail-coalesced",
            file_pool_with("power-fail-coalesced", SyncPolicy::PowerFail, 0, Some(0)),
        ),
        (
            "file-epoch",
            file_pool("epoch", SyncPolicy::ProcessCrash, 16 << 20),
        ),
    ]
}

/// The primitive the queues build everything on: store, flush the line,
/// fence.
fn persist_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("file_pool/persist_roundtrip");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (tag, pool) in pool_variants() {
        let off = pool.alloc_raw(64, 64);
        let mut v = 0u64;
        group.bench_function(BenchmarkId::new("store_flush_fence", tag), |b| {
            b.iter(|| {
                v = v.wrapping_add(1);
                pool.store_u64(off, v);
                pool.flush(0, off);
                pool.sfence(0);
                std::hint::black_box(v);
            })
        });
    }
    group.finish();
}

/// A whole queue operation pair on each backend: what persistence actually
/// costs once the algorithm (one fence per op, zero post-flush accesses)
/// amortises it.
fn queue_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("file_pool/opt_unlinked_pair");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (tag, pool) in pool_variants() {
        let queue = OptUnlinkedQueue::create(
            pool,
            QueueConfig {
                max_threads: 1,
                area_size: 4 << 20,
            },
        );
        for i in 0..1024u64 {
            queue.enqueue(0, i);
        }
        group.bench_function(BenchmarkId::new("enqueue_dequeue_pair", tag), |b| {
            b.iter(|| {
                queue.enqueue(0, 7);
                std::hint::black_box(queue.dequeue(0));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, persist_roundtrip, queue_pair);
criterion_main!(benches);
