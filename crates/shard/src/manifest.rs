//! The shard-map manifest: the durable description of a sharded queue's
//! on-disk directory.
//!
//! A file-backed sharded queue is a directory containing one pool file per
//! shard plus a `SHARDS.manifest` recording the shard count, the routing
//! policy and the pool-file names. A restarting process reads the manifest
//! first and learns the complete shape of the deployment from it — the
//! groundwork for elastic shard counts, where the manifest (not the code)
//! is the authority on how many shards exist.
//!
//! ## Format (version 1)
//!
//! A line-oriented text file, CRC-checked and atomically rewritten:
//!
//! ```text
//! dqshardmap 1
//! shards 4
//! policy keyhash
//! pool shard-00.pool
//! pool shard-01.pool
//! pool shard-02.pool
//! pool shard-03.pool
//! crc 3f82c1aa
//! ```
//!
//! The trailing `crc` line holds the CRC-32 of every byte before it, so a
//! torn or corrupted manifest is detected at read time. Rewrites go through
//! a temporary file, `fsync`, and an atomic `rename`, followed by a
//! directory `fsync` — a reader sees either the old manifest or the new
//! one, never a mixture.
//!
//! ## Reshard intent records
//!
//! The resharding operation (`RecoveryOrchestrator::reshard_dir`) rewrites
//! the directory *structurally* — it replaces N pool files with N′ — so the
//! manifest protocol graduates from a record of creation to a write-ahead
//! intent log: before touching any data, the operation durably writes a
//! [`ReshardIntent`] ([`INTENT_FILE`], same line-oriented CRC-checked
//! format) naming the source and destination pool files. The manifest
//! rewrite is the commit point; a restart that finds a leftover intent
//! compares the manifest against the intent's two sides and rolls the
//! reshard back (manifest still names the sources) or forward (manifest
//! names the destinations). See `crate::reshard` for the full protocol.

use crate::route::RoutePolicy;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use store::crc32;

/// The manifest file's name inside a shard directory.
pub const MANIFEST_FILE: &str = "SHARDS.manifest";

/// The reshard intent record's file name inside a shard directory.
pub const INTENT_FILE: &str = "SHARDS.manifest.reshard";

/// Manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Reshard-intent format version this build reads and writes.
pub const INTENT_VERSION: u32 = 1;

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Atomically writes `body` + a trailing `crc` line as `dir/name`:
/// temporary file, `fsync`, `rename`, directory `fsync`. Shared by the
/// manifest and the reshard intent record.
fn write_checked(dir: &Path, name: &str, body: &str) -> io::Result<()> {
    let content = format!("{body}crc {:08x}\n", crc32(body.as_bytes()));
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(name))?;
    // Persist the rename itself (the directory entry).
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads `path` and validates its trailing `crc` line, returning the body
/// the CRC covers.
///
/// Every failure mode names the file and what was found, so an operator
/// staring at a refused directory knows whether the file was **truncated**
/// (a torn write: empty, ends mid-line, or the trailer line is missing
/// entirely) or **corrupted** (a complete trailer whose expected CRC does
/// not match the one found on disk).
fn read_checked(path: &Path) -> io::Result<String> {
    let content = fs::read_to_string(path)?;
    if content.is_empty() {
        return Err(invalid(format!(
            "{}: empty file (truncated before any content, including the crc trailer)",
            path.display()
        )));
    }
    // The writer always ends the file with a newline-terminated
    // `crc <hex8>` trailer; a file that stops mid-line was truncated.
    let Some(complete) = content.strip_suffix('\n') else {
        let tail_start = content.rfind('\n').map(|i| i + 1).unwrap_or(0);
        return Err(invalid(format!(
            "{}: truncated file ({} bytes, ends mid-line at {:?}; crc trailer incomplete)",
            path.display(),
            content.len(),
            &content[tail_start..tail_start + (content.len() - tail_start).min(24)]
        )));
    };
    let (body, trailer) = match complete.rfind('\n') {
        Some(i) => (&content[..i + 1], &complete[i + 1..]),
        None => ("", complete),
    };
    let Some(stored_hex) = trailer.strip_prefix("crc ") else {
        return Err(invalid(format!(
            "{}: truncated file ({} bytes; last line {trailer:?} is not the crc trailer)",
            path.display(),
            content.len()
        )));
    };
    let stored = u32::from_str_radix(stored_hex.trim(), 16).map_err(|_| {
        invalid(format!(
            "{}: malformed crc value {stored_hex:?}",
            path.display()
        ))
    })?;
    let expected = crc32(body.as_bytes());
    if stored != expected {
        return Err(invalid(format!(
            "{}: CRC mismatch (expected {expected:08x} over {} body bytes, found {stored:08x})",
            path.display(),
            body.len()
        )));
    }
    Ok(body.to_string())
}

/// The durable shard map of one sharded-queue directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Routing policy the deployment was created with.
    pub policy: RoutePolicy,
    /// Pool-file names (relative to the directory), in shard order. The
    /// shard count is `pool_files.len()`.
    pub pool_files: Vec<String>,
}

impl ShardManifest {
    /// A manifest for `shards` shards with the default `shard-NN.pool`
    /// file names.
    pub fn new(shards: usize, policy: RoutePolicy) -> ShardManifest {
        assert!(shards >= 1, "a shard map needs at least 1 shard");
        ShardManifest {
            policy,
            pool_files: (0..shards).map(|i| format!("shard-{i:02}.pool")).collect(),
        }
    }

    /// Number of shards recorded in the map.
    pub fn shards(&self) -> usize {
        self.pool_files.len()
    }

    /// Absolute paths of every shard's pool file, in shard order.
    pub fn pool_paths(&self, dir: &Path) -> Vec<PathBuf> {
        self.pool_files.iter().map(|f| dir.join(f)).collect()
    }

    /// Serialises the manifest body (everything the CRC covers).
    fn body(&self) -> String {
        let mut out = format!("dqshardmap {MANIFEST_VERSION}\n");
        out.push_str(&format!("shards {}\n", self.shards()));
        out.push_str(&format!("policy {}\n", self.policy.key()));
        for file in &self.pool_files {
            out.push_str(&format!("pool {file}\n"));
        }
        out
    }

    /// Atomically (re)writes the manifest into `dir`: temporary file,
    /// `fsync`, `rename`, directory `fsync`.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        write_checked(dir, MANIFEST_FILE, &self.body())
    }

    /// Reads and validates the manifest in `dir`.
    pub fn read(dir: &Path) -> io::Result<ShardManifest> {
        let path = dir.join(MANIFEST_FILE);
        let body = read_checked(&path)?;
        let mut lines = body.lines();
        let header = lines.next().unwrap_or_default();
        let version = header
            .strip_prefix("dqshardmap ")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| invalid(format!("{}: bad header {header:?}", path.display())))?;
        if version != MANIFEST_VERSION {
            return Err(invalid(format!(
                "{}: manifest version {version} (this build reads {MANIFEST_VERSION})",
                path.display()
            )));
        }
        let mut shards: Option<usize> = None;
        let mut policy: Option<RoutePolicy> = None;
        let mut pool_files = Vec::new();
        for line in lines {
            if let Some(v) = line.strip_prefix("shards ") {
                shards =
                    Some(v.trim().parse().map_err(|_| {
                        invalid(format!("{}: bad shard count {v:?}", path.display()))
                    })?);
            } else if let Some(v) = line.strip_prefix("policy ") {
                policy =
                    Some(RoutePolicy::parse(v.trim()).ok_or_else(|| {
                        invalid(format!("{}: unknown policy {v:?}", path.display()))
                    })?);
            } else if let Some(v) = line.strip_prefix("pool ") {
                pool_files.push(v.trim().to_string());
            } else if !line.trim().is_empty() {
                return Err(invalid(format!(
                    "{}: unknown manifest line {line:?}",
                    path.display()
                )));
            }
        }
        let shards =
            shards.ok_or_else(|| invalid(format!("{}: missing shard count", path.display())))?;
        let policy =
            policy.ok_or_else(|| invalid(format!("{}: missing policy", path.display())))?;
        if shards != pool_files.len() || shards == 0 {
            return Err(invalid(format!(
                "{}: shard count {} does not match {} pool files",
                path.display(),
                shards,
                pool_files.len()
            )));
        }
        Ok(ShardManifest { policy, pool_files })
    }
}

/// The durable **write-ahead intent record** of one resharding operation.
///
/// Written (atomically, CRC-checked) *before* the reshard touches any data,
/// and removed only after the commit (or rollback) is complete. Its two
/// file lists are the two consistent states the directory may be left in:
///
/// * `old_files` — the pool files named by the manifest **before** the
///   reshard (the rollback state),
/// * `new_files` — the destination pool files the new manifest will name
///   (the roll-forward state).
///
/// A restart that finds this record compares `SHARDS.manifest` against the
/// two lists to decide which way to resolve; the manifest rewrite is the
/// single atomic commit point.
///
/// ## Format (version 1)
///
/// ```text
/// dqreshard 1
/// from 4
/// to 2
/// old shard-00.pool
/// old shard-01.pool
/// old shard-02.pool
/// old shard-03.pool
/// new shard-g1-00.pool
/// new shard-g1-01.pool
/// crc 9c24f11b
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReshardIntent {
    /// Source pool-file names (the manifest's list when the reshard began).
    pub old_files: Vec<String>,
    /// Destination pool-file names (what the committed manifest will list).
    pub new_files: Vec<String>,
}

impl ReshardIntent {
    /// Source shard count.
    pub fn from_shards(&self) -> usize {
        self.old_files.len()
    }

    /// Destination shard count.
    pub fn to_shards(&self) -> usize {
        self.new_files.len()
    }

    /// Whether a reshard intent record exists in `dir`.
    pub fn exists(dir: &Path) -> bool {
        dir.join(INTENT_FILE).exists()
    }

    fn body(&self) -> String {
        let mut out = format!("dqreshard {INTENT_VERSION}\n");
        out.push_str(&format!("from {}\n", self.from_shards()));
        out.push_str(&format!("to {}\n", self.to_shards()));
        for file in &self.old_files {
            out.push_str(&format!("old {file}\n"));
        }
        for file in &self.new_files {
            out.push_str(&format!("new {file}\n"));
        }
        out
    }

    /// Atomically writes the intent record into `dir` (temporary file,
    /// `fsync`, `rename`, directory `fsync`) — the write-ahead step of the
    /// reshard protocol.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        write_checked(dir, INTENT_FILE, &self.body())
    }

    /// Reads and validates the intent record in `dir`. `NotFound` when no
    /// reshard is in flight.
    pub fn read(dir: &Path) -> io::Result<ReshardIntent> {
        let path = dir.join(INTENT_FILE);
        let body = read_checked(&path)?;
        let mut lines = body.lines();
        let header = lines.next().unwrap_or_default();
        let version = header
            .strip_prefix("dqreshard ")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| invalid(format!("{}: bad header {header:?}", path.display())))?;
        if version != INTENT_VERSION {
            return Err(invalid(format!(
                "{}: reshard-intent version {version} (this build reads {INTENT_VERSION})",
                path.display()
            )));
        }
        let mut from: Option<usize> = None;
        let mut to: Option<usize> = None;
        let mut old_files = Vec::new();
        let mut new_files = Vec::new();
        for line in lines {
            if let Some(v) = line.strip_prefix("from ") {
                from =
                    Some(v.trim().parse().map_err(|_| {
                        invalid(format!("{}: bad from count {v:?}", path.display()))
                    })?);
            } else if let Some(v) = line.strip_prefix("to ") {
                to = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| invalid(format!("{}: bad to count {v:?}", path.display())))?,
                );
            } else if let Some(v) = line.strip_prefix("old ") {
                old_files.push(v.trim().to_string());
            } else if let Some(v) = line.strip_prefix("new ") {
                new_files.push(v.trim().to_string());
            } else if !line.trim().is_empty() {
                return Err(invalid(format!(
                    "{}: unknown intent line {line:?}",
                    path.display()
                )));
            }
        }
        let from =
            from.ok_or_else(|| invalid(format!("{}: missing from count", path.display())))?;
        let to = to.ok_or_else(|| invalid(format!("{}: missing to count", path.display())))?;
        if from != old_files.len() || to != new_files.len() || from == 0 || to == 0 {
            return Err(invalid(format!(
                "{}: counts (from {from}, to {to}) do not match {} old / {} new files",
                path.display(),
                old_files.len(),
                new_files.len()
            )));
        }
        Ok(ReshardIntent {
            old_files,
            new_files,
        })
    }

    /// Removes the intent record (the final step of commit or rollback) and
    /// persists the removal with a directory `fsync`. Idempotent: a missing
    /// record is success.
    pub fn remove(dir: &Path) -> io::Result<()> {
        match fs::remove_file(dir.join(INTENT_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        }
        #[cfg(unix)]
        File::open(dir)?.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shard-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_every_policy() {
        let dir = temp_dir("roundtrip");
        for policy in RoutePolicy::all() {
            let m = ShardManifest::new(4, policy);
            m.write(&dir).unwrap();
            assert_eq!(ShardManifest::read(&dir).unwrap(), m);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_is_atomic_and_replaces_the_old_map() {
        let dir = temp_dir("rewrite");
        ShardManifest::new(2, RoutePolicy::RoundRobin)
            .write(&dir)
            .unwrap();
        ShardManifest::new(8, RoutePolicy::KeyHash)
            .write(&dir)
            .unwrap();
        let m = ShardManifest::read(&dir).unwrap();
        assert_eq!(m.shards(), 8);
        assert_eq!(m.policy, RoutePolicy::KeyHash);
        // No temporary files survive the rewrite.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != MANIFEST_FILE)
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir("corrupt");
        ShardManifest::new(4, RoutePolicy::LoadAware)
            .write(&dir)
            .unwrap();
        let path = dir.join(MANIFEST_FILE);
        let good = fs::read_to_string(&path).unwrap();

        // Flip a byte inside the body: CRC mismatch, reported with the
        // file, the expected CRC and the one found on disk.
        fs::write(&path, good.replace("shards 4", "shards 5")).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("CRC mismatch"), "{err}");
        assert!(err.contains(MANIFEST_FILE), "{err}");
        assert!(err.contains("expected") && err.contains("found"), "{err}");

        // Remove the crc line entirely (complete lines, no trailer).
        let no_crc = format!("{}\n", good.lines().take(3).collect::<Vec<_>>().join("\n"));
        fs::write(&path, no_crc).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("not the crc trailer"), "{err}");

        // Truncate mid-line (a torn write): reported as truncation, with
        // the file and the torn tail.
        fs::write(&path, &good.as_bytes()[..good.len() - 5]).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains(MANIFEST_FILE), "{err}");

        // Truncate to nothing.
        fs::write(&path, "").unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("empty file"), "{err}");

        // A non-hex crc value is malformed, not a mismatch.
        let body = &good[..good.rfind("crc ").unwrap()];
        fs::write(&path, format!("{body}crc zzzzzzzz\n")).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("malformed crc value"), "{err}");

        // Future version is refused (CRC recomputed to keep that the only
        // difference).
        let future_body =
            good[..good.rfind("crc ").unwrap()].replace("dqshardmap 1", "dqshardmap 9");
        let future = format!("{future_body}crc {:08x}\n", crc32(future_body.as_bytes()));
        fs::write(&path, future).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pool_paths_and_default_names() {
        let m = ShardManifest::new(3, RoutePolicy::RoundRobin);
        assert_eq!(
            m.pool_files,
            vec!["shard-00.pool", "shard-01.pool", "shard-02.pool"]
        );
        let paths = m.pool_paths(Path::new("/data/q"));
        assert_eq!(paths[2], Path::new("/data/q/shard-02.pool"));
    }

    #[test]
    fn reshard_intent_roundtrips_and_removes_idempotently() {
        let dir = temp_dir("intent");
        let intent = ReshardIntent {
            old_files: (0..4).map(|i| format!("shard-{i:02}.pool")).collect(),
            new_files: (0..2).map(|i| format!("shard-g1-{i:02}.pool")).collect(),
        };
        assert!(!ReshardIntent::exists(&dir));
        intent.write(&dir).unwrap();
        assert!(ReshardIntent::exists(&dir));
        let read = ReshardIntent::read(&dir).unwrap();
        assert_eq!(read, intent);
        assert_eq!(read.from_shards(), 4);
        assert_eq!(read.to_shards(), 2);
        ReshardIntent::remove(&dir).unwrap();
        assert!(!ReshardIntent::exists(&dir));
        ReshardIntent::remove(&dir).unwrap(); // idempotent
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reshard_intent_corruption_and_mismatches_are_detected() {
        let dir = temp_dir("intent-corrupt");
        let intent = ReshardIntent {
            old_files: vec!["shard-00.pool".into()],
            new_files: vec!["shard-g1-00.pool".into(), "shard-g1-01.pool".into()],
        };
        intent.write(&dir).unwrap();
        let path = dir.join(INTENT_FILE);
        let good = fs::read_to_string(&path).unwrap();

        // Body corruption: CRC mismatch.
        fs::write(&path, good.replace("to 2", "to 3")).unwrap();
        let err = ReshardIntent::read(&dir).unwrap_err().to_string();
        assert!(err.contains("CRC"), "{err}");

        // Count/list mismatch survives the CRC but is rejected.
        let bad_body = intent.body().replace("to 2", "to 9");
        fs::write(
            &path,
            format!("{bad_body}crc {:08x}\n", crc32(bad_body.as_bytes())),
        )
        .unwrap();
        let err = ReshardIntent::read(&dir).unwrap_err().to_string();
        assert!(err.contains("do not match"), "{err}");

        // Future version is refused.
        let future = intent.body().replace("dqreshard 1", "dqreshard 7");
        fs::write(
            &path,
            format!("{future}crc {:08x}\n", crc32(future.as_bytes())),
        )
        .unwrap();
        let err = ReshardIntent::read(&dir).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");

        // Missing record: NotFound, and `exists` agrees.
        fs::remove_file(&path).unwrap();
        assert_eq!(
            ReshardIntent::read(&dir).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_mismatch_is_rejected() {
        let dir = temp_dir("mismatch");
        let mut m = ShardManifest::new(3, RoutePolicy::RoundRobin);
        m.pool_files.pop();
        // Bypass `new`'s invariant by writing the inconsistent map directly.
        let body = format!(
            "dqshardmap 1\nshards 3\npolicy rr\npool {}\npool {}\n",
            m.pool_files[0], m.pool_files[1]
        );
        let content = format!("{body}crc {:08x}\n", crc32(body.as_bytes()));
        fs::write(dir.join(MANIFEST_FILE), content).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("does not match"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
