//! The shard-map manifest: the durable description of a sharded queue's
//! on-disk directory.
//!
//! A file-backed sharded queue is a directory containing one pool file per
//! shard plus a `SHARDS.manifest` recording the shard count, the routing
//! policy and the pool-file names. A restarting process reads the manifest
//! first and learns the complete shape of the deployment from it — the
//! groundwork for elastic shard counts, where the manifest (not the code)
//! is the authority on how many shards exist.
//!
//! ## Format (version 1)
//!
//! A line-oriented text file, CRC-checked and atomically rewritten:
//!
//! ```text
//! dqshardmap 1
//! shards 4
//! policy keyhash
//! pool shard-00.pool
//! pool shard-01.pool
//! pool shard-02.pool
//! pool shard-03.pool
//! crc 3f82c1aa
//! ```
//!
//! The trailing `crc` line holds the CRC-32 of every byte before it, so a
//! torn or corrupted manifest is detected at read time. Rewrites go through
//! a temporary file, `fsync`, and an atomic `rename`, followed by a
//! directory `fsync` — a reader sees either the old manifest or the new
//! one, never a mixture.

use crate::route::RoutePolicy;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use store::crc32;

/// The manifest file's name inside a shard directory.
pub const MANIFEST_FILE: &str = "SHARDS.manifest";

/// Manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The durable shard map of one sharded-queue directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Routing policy the deployment was created with.
    pub policy: RoutePolicy,
    /// Pool-file names (relative to the directory), in shard order. The
    /// shard count is `pool_files.len()`.
    pub pool_files: Vec<String>,
}

impl ShardManifest {
    /// A manifest for `shards` shards with the default `shard-NN.pool`
    /// file names.
    pub fn new(shards: usize, policy: RoutePolicy) -> ShardManifest {
        assert!(shards >= 1, "a shard map needs at least 1 shard");
        ShardManifest {
            policy,
            pool_files: (0..shards).map(|i| format!("shard-{i:02}.pool")).collect(),
        }
    }

    /// Number of shards recorded in the map.
    pub fn shards(&self) -> usize {
        self.pool_files.len()
    }

    /// Absolute paths of every shard's pool file, in shard order.
    pub fn pool_paths(&self, dir: &Path) -> Vec<PathBuf> {
        self.pool_files.iter().map(|f| dir.join(f)).collect()
    }

    /// Serialises the manifest body (everything the CRC covers).
    fn body(&self) -> String {
        let mut out = format!("dqshardmap {MANIFEST_VERSION}\n");
        out.push_str(&format!("shards {}\n", self.shards()));
        out.push_str(&format!("policy {}\n", self.policy.key()));
        for file in &self.pool_files {
            out.push_str(&format!("pool {file}\n"));
        }
        out
    }

    /// Atomically (re)writes the manifest into `dir`: temporary file,
    /// `fsync`, `rename`, directory `fsync`.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let body = self.body();
        let content = format!("{body}crc {:08x}\n", crc32(body.as_bytes()));
        let tmp = dir.join(format!(".{MANIFEST_FILE}.tmp.{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(content.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        // Persist the rename itself (the directory entry).
        #[cfg(unix)]
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Reads and validates the manifest in `dir`.
    pub fn read(dir: &Path) -> io::Result<ShardManifest> {
        let path = dir.join(MANIFEST_FILE);
        let content = fs::read_to_string(&path)?;
        let Some(crc_start) = content.rfind("crc ") else {
            return Err(invalid(format!("{}: missing crc line", path.display())));
        };
        let body = &content[..crc_start];
        let stored = u32::from_str_radix(content[crc_start + 4..].trim(), 16)
            .map_err(|_| invalid(format!("{}: malformed crc line", path.display())))?;
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(invalid(format!(
                "{}: manifest CRC mismatch (stored {stored:08x}, computed {computed:08x})",
                path.display()
            )));
        }

        let mut lines = body.lines();
        let header = lines.next().unwrap_or_default();
        let version = header
            .strip_prefix("dqshardmap ")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| invalid(format!("{}: bad header {header:?}", path.display())))?;
        if version != MANIFEST_VERSION {
            return Err(invalid(format!(
                "{}: manifest version {version} (this build reads {MANIFEST_VERSION})",
                path.display()
            )));
        }
        let mut shards: Option<usize> = None;
        let mut policy: Option<RoutePolicy> = None;
        let mut pool_files = Vec::new();
        for line in lines {
            if let Some(v) = line.strip_prefix("shards ") {
                shards =
                    Some(v.trim().parse().map_err(|_| {
                        invalid(format!("{}: bad shard count {v:?}", path.display()))
                    })?);
            } else if let Some(v) = line.strip_prefix("policy ") {
                policy =
                    Some(RoutePolicy::parse(v.trim()).ok_or_else(|| {
                        invalid(format!("{}: unknown policy {v:?}", path.display()))
                    })?);
            } else if let Some(v) = line.strip_prefix("pool ") {
                pool_files.push(v.trim().to_string());
            } else if !line.trim().is_empty() {
                return Err(invalid(format!(
                    "{}: unknown manifest line {line:?}",
                    path.display()
                )));
            }
        }
        let shards =
            shards.ok_or_else(|| invalid(format!("{}: missing shard count", path.display())))?;
        let policy =
            policy.ok_or_else(|| invalid(format!("{}: missing policy", path.display())))?;
        if shards != pool_files.len() || shards == 0 {
            return Err(invalid(format!(
                "{}: shard count {} does not match {} pool files",
                path.display(),
                shards,
                pool_files.len()
            )));
        }
        Ok(ShardManifest { policy, pool_files })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shard-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_every_policy() {
        let dir = temp_dir("roundtrip");
        for policy in RoutePolicy::all() {
            let m = ShardManifest::new(4, policy);
            m.write(&dir).unwrap();
            assert_eq!(ShardManifest::read(&dir).unwrap(), m);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_is_atomic_and_replaces_the_old_map() {
        let dir = temp_dir("rewrite");
        ShardManifest::new(2, RoutePolicy::RoundRobin)
            .write(&dir)
            .unwrap();
        ShardManifest::new(8, RoutePolicy::KeyHash)
            .write(&dir)
            .unwrap();
        let m = ShardManifest::read(&dir).unwrap();
        assert_eq!(m.shards(), 8);
        assert_eq!(m.policy, RoutePolicy::KeyHash);
        // No temporary files survive the rewrite.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != MANIFEST_FILE)
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir("corrupt");
        ShardManifest::new(4, RoutePolicy::LoadAware)
            .write(&dir)
            .unwrap();
        let path = dir.join(MANIFEST_FILE);
        let good = fs::read_to_string(&path).unwrap();

        // Flip a byte inside the body: CRC mismatch.
        fs::write(&path, good.replace("shards 4", "shards 5")).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("CRC"), "{err}");

        // Remove the crc line entirely.
        let no_crc = good.lines().take(3).collect::<Vec<_>>().join("\n");
        fs::write(&path, no_crc).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("crc"), "{err}");

        // Future version is refused (CRC recomputed to keep that the only
        // difference).
        let future_body =
            good[..good.rfind("crc ").unwrap()].replace("dqshardmap 1", "dqshardmap 9");
        let future = format!("{future_body}crc {:08x}\n", crc32(future_body.as_bytes()));
        fs::write(&path, future).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pool_paths_and_default_names() {
        let m = ShardManifest::new(3, RoutePolicy::RoundRobin);
        assert_eq!(
            m.pool_files,
            vec!["shard-00.pool", "shard-01.pool", "shard-02.pool"]
        );
        let paths = m.pool_paths(Path::new("/data/q"));
        assert_eq!(paths[2], Path::new("/data/q/shard-02.pool"));
    }

    #[test]
    fn shard_count_mismatch_is_rejected() {
        let dir = temp_dir("mismatch");
        let mut m = ShardManifest::new(3, RoutePolicy::RoundRobin);
        m.pool_files.pop();
        // Bypass `new`'s invariant by writing the inconsistent map directly.
        let body = format!(
            "dqshardmap 1\nshards 3\npolicy rr\npool {}\npool {}\n",
            m.pool_files[0], m.pool_files[1]
        );
        let content = format!("{body}crc {:08x}\n", crc32(body.as_bytes()));
        fs::write(dir.join(MANIFEST_FILE), content).unwrap();
        let err = ShardManifest::read(&dir).unwrap_err().to_string();
        assert!(err.contains("does not match"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
