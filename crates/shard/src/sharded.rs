//! The sharded queue: N independent recoverable queues behind one
//! [`DurableQueue`] front.

use crate::route::{RoutePolicy, Router};
use durable_queues::{DurableQueue, KeyedQueue, QueueConfig, RecoverableQueue};
use obs::LazyCounter;
use pmem::{PmemPool, PoolConfig, StatsSnapshot};
use std::sync::Arc;

// Routing-decision instruments: how traffic spreads over the shards, and
// how often a dequeue scan comes up empty (a `miss` walked every shard).
static ROUTE_ENQ: LazyCounter = LazyCounter::new("shard.route.enqueue");
static ROUTE_KEYED: LazyCounter = LazyCounter::new("shard.route.keyed");
static DEQ_HIT: LazyCounter = LazyCounter::new("shard.dequeue.hit");
static DEQ_MISS: LazyCounter = LazyCounter::new("shard.dequeue.miss");

/// Configuration of a [`ShardedQueue`].
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of shards (independent pool + queue pairs). Must be ≥ 1.
    pub shards: usize,
    /// Configuration of every inner queue. `max_threads` is the number of
    /// logical threads operating on the *sharded* queue; every shard is
    /// configured for all of them, because routing may send any thread to
    /// any shard.
    pub queue: QueueConfig,
    /// Configuration of every per-shard pool.
    pub pool: PoolConfig,
    /// Routing policy for enqueues and dequeue starting points.
    pub policy: RoutePolicy,
}

impl ShardConfig {
    /// A small configuration for unit and property tests.
    pub fn small_test(shards: usize) -> Self {
        ShardConfig {
            shards,
            queue: QueueConfig::small_test(),
            pool: PoolConfig::test_with_size(8 << 20),
            policy: RoutePolicy::RoundRobin,
        }
    }

    /// Divides a total memory budget across `shards` shards so that every
    /// shard is guaranteed to fit its allocator footprint.
    ///
    /// Two adjustments make an N-shard deployment fit in roughly the
    /// single-queue budget: the designated-area size is scaled down by the
    /// shard count (each shard sees ~1/N of the traffic, floored at 256 KiB
    /// so areas stay useful), and the per-shard pool is floored at two
    /// scaled areas per thread — every thread may carve areas on every
    /// shard — plus fixed slack for roots and live nodes.
    pub fn balanced(
        shards: usize,
        queue: QueueConfig,
        pool_budget: usize,
        base_pool: PoolConfig,
        policy: RoutePolicy,
    ) -> Self {
        let shards = shards.max(1);
        let area_size = (queue.area_size / shards as u32).max(256 * 1024);
        let queue = QueueConfig { area_size, ..queue };
        let min_pool = queue.max_threads * area_size as usize * 2 + (16 << 20);
        ShardConfig {
            shards,
            queue,
            pool: PoolConfig {
                size: (pool_budget / shards).max(min_pool),
                ..base_pool
            },
            policy,
        }
    }

    /// Overrides the routing policy.
    pub fn with_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the inner queue configuration.
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = queue;
        self
    }

    /// Overrides the per-shard pool configuration.
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }
}

/// One shard: its pool, its queue, nothing shared with any other shard.
pub(crate) struct Shard<Q> {
    pub(crate) queue: Q,
    pub(crate) pool: Arc<PmemPool>,
}

/// A FIFO-per-shard durable queue that partitions traffic across `N`
/// independent shards, each owning its own [`PmemPool`] and inner queue.
///
/// Guarantees, relative to a single queue:
///
/// * **Per-shard FIFO** instead of global FIFO: each shard is itself durably
///   linearizable, and under [`RoutePolicy::KeyHash`] all items with one key
///   live on one shard, so per-key FIFO order holds end to end.
/// * **No loss on dequeue**: a dequeue starts at the routed shard and scans
///   the remaining shards in ring order before reporting empty.
/// * **Independent persistence**: shards never share a cache line or a
///   fence, so the per-operation persist cost of the inner algorithm is
///   unchanged while throughput scales with shard count.
pub struct ShardedQueue<Q: RecoverableQueue> {
    shards: Box<[Shard<Q>]>,
    router: Router,
    config: ShardConfig,
}

impl<Q: RecoverableQueue> ShardedQueue<Q> {
    /// Creates `config.shards` fresh shards, each on its own fresh pool.
    pub fn create(config: ShardConfig) -> Self {
        let pools = (0..config.shards)
            .map(|_| Arc::new(PmemPool::new(config.pool)))
            .collect();
        Self::create_on(pools, config)
    }

    /// Creates fresh shards on caller-provided pools (one per shard).
    pub fn create_on(pools: Vec<Arc<PmemPool>>, config: ShardConfig) -> Self {
        assert!(config.shards >= 1, "a sharded queue needs at least 1 shard");
        assert_eq!(pools.len(), config.shards, "one pool per shard");
        let shards = pools
            .into_iter()
            .map(|pool| Shard {
                queue: Q::create(Arc::clone(&pool), config.queue),
                pool,
            })
            .collect();
        Self::from_shards(shards, config)
    }

    /// Assembles a sharded queue from already-constructed shards (used by
    /// the recovery orchestrator).
    pub(crate) fn from_shards(shards: Box<[Shard<Q>]>, config: ShardConfig) -> Self {
        let router = Router::new(config.policy, config.shards, config.queue.max_threads);
        ShardedQueue {
            shards,
            router,
            config,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sharded configuration (the inner `QueueConfig` is `config()`).
    pub fn shard_config(&self) -> &ShardConfig {
        &self.config
    }

    /// The routing policy in effect.
    pub fn policy(&self) -> RoutePolicy {
        self.router.policy()
    }

    /// Direct access to shard `i`'s queue (tests, per-shard draining).
    pub fn shard(&self, i: usize) -> &Q {
        &self.shards[i].queue
    }

    /// The pool owned by shard `i`.
    pub fn shard_pool(&self, i: usize) -> &Arc<PmemPool> {
        &self.shards[i].pool
    }

    /// All per-shard pools, in shard order.
    pub fn pools(&self) -> Vec<Arc<PmemPool>> {
        self.shards.iter().map(|s| Arc::clone(&s.pool)).collect()
    }

    /// Persistence counters of each shard, in shard order. The bench layer
    /// uses this to attribute persist costs per shard; `stats()` is its sum.
    pub fn per_shard_stats(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(|s| s.pool.stats()).collect()
    }

    /// Per-shard queue-depth estimates (what the load-aware policy steers
    /// by). Estimates only: concurrent operations race with the counter
    /// updates, and recovery resets them to zero.
    pub fn depth_estimates(&self) -> Vec<i64> {
        self.router.depths()
    }

    /// The shard the key-hash policy routes `key` to.
    pub fn shard_for_key(&self, key: u64) -> usize {
        self.router.shard_for_key(key)
    }

    /// Enqueues into a specific shard, updating the depth estimate.
    #[inline]
    fn enqueue_at(&self, shard: usize, tid: usize, item: u64) {
        self.shards[shard].queue.enqueue(tid, item);
        self.router.note_enqueue(shard);
    }
}

impl<Q: RecoverableQueue> DurableQueue for ShardedQueue<Q> {
    fn enqueue(&self, tid: usize, item: u64) {
        ROUTE_ENQ.incr();
        let shard = self.router.enqueue_shard(tid);
        self.enqueue_at(shard, tid, item);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        let start = self.router.dequeue_start(tid);
        let n = self.shards.len();
        for i in 0..n {
            let shard = (start + i) % n;
            if let Some(v) = self.shards[shard].queue.dequeue(tid) {
                self.router.note_dequeue(shard);
                DEQ_HIT.incr();
                return Some(v);
            }
        }
        DEQ_MISS.incr();
        None
    }

    fn name(&self) -> &'static str {
        // The inner algorithm's name: a sharded queue is a composition, and
        // the figures attribute results to the algorithm being scaled.
        self.shards[0].queue.name()
    }

    /// The pool of shard 0, as the trait's designated "primary" pool.
    /// Aggregate accounting must go through [`DurableQueue::stats`] /
    /// [`ShardedQueue::per_shard_stats`], which cover every shard.
    fn pool(&self) -> &Arc<PmemPool> {
        &self.shards[0].pool
    }

    fn config(&self) -> QueueConfig {
        self.config.queue
    }

    fn is_durable(&self) -> bool {
        self.shards[0].queue.is_durable()
    }

    fn stats(&self) -> StatsSnapshot {
        self.per_shard_stats().into_iter().sum()
    }

    fn reset_stats(&self) {
        for s in self.shards.iter() {
            s.pool.reset_stats();
        }
    }
}

impl<Q: RecoverableQueue> KeyedQueue for ShardedQueue<Q> {
    /// Routes by key hash under *every* policy, so `enqueue_keyed` always
    /// gives per-key FIFO order across the sharded queue.
    fn enqueue_keyed(&self, tid: usize, key: u64, item: u64) {
        ROUTE_KEYED.incr();
        let shard = self.router.shard_for_key(key);
        self.enqueue_at(shard, tid, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_queues::OptUnlinkedQueue;

    fn sharded(shards: usize, policy: RoutePolicy) -> ShardedQueue<OptUnlinkedQueue> {
        ShardedQueue::create(ShardConfig::small_test(shards).with_policy(policy))
    }

    #[test]
    fn single_shard_behaves_like_the_inner_queue() {
        let q = sharded(1, RoutePolicy::RoundRobin);
        for i in 1..=50 {
            q.enqueue(0, i);
        }
        for i in 1..=50 {
            assert_eq!(q.dequeue(0), Some(i));
        }
        assert_eq!(q.dequeue(0), None);
    }

    #[test]
    fn nothing_is_lost_or_duplicated_across_shards() {
        for policy in RoutePolicy::all() {
            let q = sharded(4, policy);
            for i in 1..=200u64 {
                q.enqueue(0, i);
            }
            let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
            got.sort_unstable();
            assert_eq!(got, (1..=200).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn round_robin_spreads_enqueues_evenly() {
        let q = sharded(4, RoutePolicy::RoundRobin);
        for i in 0..400u64 {
            q.enqueue(0, i + 1);
        }
        for d in q.depth_estimates() {
            assert_eq!(d, 100);
        }
    }

    #[test]
    fn keyed_enqueues_keep_per_key_fifo_on_one_shard() {
        let q = sharded(8, RoutePolicy::KeyHash);
        for key in 0..16u64 {
            for seq in 0..20u64 {
                q.enqueue_keyed(0, key, (key << 32) | seq);
            }
        }
        for key in 0..16u64 {
            let shard = q.shard_for_key(key);
            // Drain the key's shard directly: its items for this key must
            // appear in enqueue order.
            let mut last = None;
            let drained: Vec<u64> = std::iter::from_fn(|| q.shard(shard).dequeue(0)).collect();
            for v in drained.iter().filter(|v| (*v >> 32) == key) {
                let seq = v & 0xFFFF_FFFF;
                if let Some(prev) = last {
                    assert!(seq > prev, "per-key FIFO violated for key {key}");
                }
                last = Some(seq);
            }
            // Re-enqueue what we drained so later keys on the same shard
            // still find their items (shards are shared between keys).
            for v in drained {
                q.shard(shard).enqueue(0, v);
            }
        }
    }

    #[test]
    fn load_aware_keeps_shards_balanced() {
        let q = sharded(4, RoutePolicy::LoadAware);
        for i in 0..100u64 {
            q.enqueue(0, i + 1);
        }
        let depths = q.depth_estimates();
        assert_eq!(depths.iter().sum::<i64>(), 100);
        assert!(
            depths.iter().all(|&d| d == 25),
            "load-aware enqueue left shards unbalanced: {depths:?}"
        );
    }

    #[test]
    fn stats_aggregate_across_all_shards() {
        let q = sharded(4, RoutePolicy::RoundRobin);
        q.reset_stats();
        for i in 0..40u64 {
            q.enqueue(0, i + 1);
        }
        let per_shard = q.per_shard_stats();
        assert_eq!(per_shard.len(), 4);
        let total: StatsSnapshot = per_shard.iter().sum();
        assert_eq!(q.stats(), total);
        // Every shard did one fence per enqueue (OptUnlinked's bound) and
        // the aggregate is their sum.
        assert_eq!(total.fences, 40);
        for s in &per_shard {
            assert_eq!(s.fences, 10);
        }
        q.reset_stats();
        assert_eq!(q.stats(), StatsSnapshot::default());
    }

    #[test]
    fn dequeue_scans_past_the_routed_shard() {
        let q = sharded(4, RoutePolicy::RoundRobin);
        // Put a single item on one shard only; every dequeue must find it
        // no matter where its scan starts.
        q.enqueue(0, 42);
        assert_eq!(q.dequeue(1), Some(42));
        assert_eq!(q.dequeue(1), None);
    }

    #[test]
    fn balanced_config_scales_areas_and_floors_the_pool() {
        let q = QueueConfig {
            max_threads: 16,
            area_size: 4 << 20,
        };
        let cfg = ShardConfig::balanced(
            8,
            q,
            256 << 20,
            PoolConfig::small_test(),
            RoutePolicy::KeyHash,
        );
        // Areas shrink with the shard count; the budget splits evenly.
        assert_eq!(cfg.queue.area_size, 512 * 1024);
        assert_eq!(cfg.pool.size, 32 << 20);
        assert_eq!(cfg.policy, RoutePolicy::KeyHash);
        // Every shard fits two scaled areas per thread plus slack, even
        // when the budget is far too small.
        let starved = ShardConfig::balanced(
            8,
            q,
            1 << 20,
            PoolConfig::small_test(),
            RoutePolicy::RoundRobin,
        );
        assert!(starved.pool.size >= 16 * (512 * 1024) * 2 + (16 << 20));
        // The area floor keeps tiny configurations usable.
        let tiny = ShardConfig::balanced(
            64,
            QueueConfig::small_test(),
            1 << 20,
            PoolConfig::small_test(),
            RoutePolicy::RoundRobin,
        );
        assert_eq!(tiny.queue.area_size, 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least 1 shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedQueue::<OptUnlinkedQueue>::create(ShardConfig::small_test(0));
    }
}
