//! Routing policies: which shard an operation lands on.
//!
//! A policy decides two things: the shard an enqueue appends to, and the
//! shard a dequeue *starts* at (the sharded queue scans the remaining shards
//! in ring order before reporting empty, so routing never loses items — it
//! only shapes locality and balance).

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

/// How traffic is partitioned across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RoutePolicy {
    /// Each thread cycles through the shards independently. Perfectly even
    /// in steady state, with no shared routing state on the hot path.
    #[default]
    RoundRobin,
    /// `enqueue_keyed` hashes the key to a shard, so all items with the same
    /// key land on the same shard (per-key FIFO order). Plain enqueues hash
    /// the thread id instead, preserving per-producer FIFO order.
    KeyHash,
    /// Enqueue to the shallowest shard and dequeue from the deepest, using
    /// per-shard depth estimates maintained by the sharded queue.
    LoadAware,
}

impl RoutePolicy {
    /// Every policy, for sweeps and tests.
    pub fn all() -> Vec<RoutePolicy> {
        vec![
            RoutePolicy::RoundRobin,
            RoutePolicy::KeyHash,
            RoutePolicy::LoadAware,
        ]
    }

    /// Short identifier used on the command line.
    pub fn key(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::KeyHash => "keyhash",
            RoutePolicy::LoadAware => "load",
        }
    }

    /// Parses a (case-insensitive) policy name.
    pub fn parse(s: &str) -> Option<RoutePolicy> {
        match s.to_ascii_lowercase().as_str() {
            "rr" | "roundrobin" | "round-robin" => Some(RoutePolicy::RoundRobin),
            "keyhash" | "key-hash" | "hash" => Some(RoutePolicy::KeyHash),
            "load" | "loadaware" | "load-aware" => Some(RoutePolicy::LoadAware),
            _ => None,
        }
    }
}

/// SplitMix64 finaliser — a cheap, well-mixed hash for shard selection.
#[inline]
pub(crate) fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The routing state of one sharded queue: per-thread ring positions (for
/// round-robin enqueues and for dequeue starting points under every policy)
/// plus the per-shard depth estimates the load-aware policy reads.
pub(crate) struct Router {
    policy: RoutePolicy,
    shards: usize,
    /// Per-thread enqueue ring position (round-robin).
    enq_pos: Box<[CachePadded<AtomicUsize>]>,
    /// Per-thread dequeue ring position.
    deq_pos: Box<[CachePadded<AtomicUsize>]>,
    /// Per-shard queue-depth estimates: incremented on enqueue, decremented
    /// on successful dequeue. Estimates, not truths — concurrent operations
    /// and recovery reset them — so they only ever steer, never gate.
    depths: Box<[CachePadded<AtomicI64>]>,
}

impl Router {
    pub(crate) fn new(policy: RoutePolicy, shards: usize, max_threads: usize) -> Router {
        // Stagger the starting points so thread t does not collide with
        // every other thread on shard 0 at startup.
        let pos = || {
            (0..max_threads)
                .map(|t| CachePadded::new(AtomicUsize::new(t % shards.max(1))))
                .collect()
        };
        Router {
            policy,
            shards,
            enq_pos: pos(),
            deq_pos: pos(),
            depths: (0..shards)
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    pub(crate) fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The shard a keyed enqueue lands on (always key-hashed, regardless of
    /// policy — that is the contract of `enqueue_keyed`).
    #[inline]
    pub(crate) fn shard_for_key(&self, key: u64) -> usize {
        (mix(key) % self.shards as u64) as usize
    }

    /// The shard a plain enqueue by `tid` lands on.
    #[inline]
    pub(crate) fn enqueue_shard(&self, tid: usize) -> usize {
        match self.policy {
            RoutePolicy::RoundRobin => {
                self.enq_pos[tid].fetch_add(1, Ordering::Relaxed) % self.shards
            }
            RoutePolicy::KeyHash => self.shard_for_key(tid as u64),
            RoutePolicy::LoadAware => self.shallowest_shard(),
        }
    }

    /// The shard a dequeue by `tid` starts scanning at.
    #[inline]
    pub(crate) fn dequeue_start(&self, tid: usize) -> usize {
        match self.policy {
            RoutePolicy::RoundRobin | RoutePolicy::KeyHash => {
                self.deq_pos[tid].fetch_add(1, Ordering::Relaxed) % self.shards
            }
            RoutePolicy::LoadAware => self.deepest_shard(),
        }
    }

    #[inline]
    pub(crate) fn note_enqueue(&self, shard: usize) {
        self.depths[shard].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn note_dequeue(&self, shard: usize) {
        self.depths[shard].fetch_sub(1, Ordering::Relaxed);
    }

    /// Current per-shard depth estimates.
    pub(crate) fn depths(&self) -> Vec<i64> {
        self.depths
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }

    fn shallowest_shard(&self) -> usize {
        let mut best = 0;
        let mut best_depth = i64::MAX;
        for (i, d) in self.depths.iter().enumerate() {
            let depth = d.load(Ordering::Relaxed);
            if depth < best_depth {
                best = i;
                best_depth = depth;
            }
        }
        best
    }

    fn deepest_shard(&self) -> usize {
        let mut best = 0;
        let mut best_depth = i64::MIN;
        for (i, d) in self.depths.iter().enumerate() {
            let depth = d.load(Ordering::Relaxed);
            if depth > best_depth {
                best = i;
                best_depth = depth;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_keys_parse() {
        for p in RoutePolicy::all() {
            assert_eq!(RoutePolicy::parse(p.key()), Some(p));
        }
        assert_eq!(RoutePolicy::parse("bogus"), None);
        assert_eq!(RoutePolicy::default(), RoutePolicy::RoundRobin);
    }

    #[test]
    fn round_robin_cycles_every_shard_per_thread() {
        let r = Router::new(RoutePolicy::RoundRobin, 4, 2);
        let first: Vec<usize> = (0..8).map(|_| r.enqueue_shard(0)).collect();
        assert_eq!(first, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // An independent thread also cycles all shards.
        let second: Vec<usize> = (0..4).map(|_| r.enqueue_shard(1)).collect();
        let mut sorted = second.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn key_hash_is_stable_and_spread() {
        let r = Router::new(RoutePolicy::KeyHash, 8, 1);
        for key in 0..64u64 {
            assert_eq!(r.shard_for_key(key), r.shard_for_key(key));
        }
        let hit: std::collections::HashSet<usize> =
            (0..64u64).map(|k| r.shard_for_key(k)).collect();
        assert!(hit.len() > 4, "64 keys hit only {} of 8 shards", hit.len());
    }

    #[test]
    fn load_aware_targets_shallow_and_deep_shards() {
        let r = Router::new(RoutePolicy::LoadAware, 3, 1);
        r.note_enqueue(0);
        r.note_enqueue(0);
        r.note_enqueue(2);
        // Shard 1 is empty: enqueues go there, dequeues start at shard 0.
        assert_eq!(r.enqueue_shard(0), 1);
        assert_eq!(r.dequeue_start(0), 0);
        r.note_dequeue(0);
        r.note_dequeue(0);
        assert_eq!(r.dequeue_start(0), 2);
        assert_eq!(r.depths(), vec![0, 0, 1]);
    }
}
