//! Coherent crash fan-out and parallel recovery across all shards.
//!
//! A crash takes down every shard at once, so the orchestrator snapshots all
//! shard pools as one campaign ([`RecoveryOrchestrator::crash`]) and, on
//! restart, runs every shard's recovery procedure **in parallel** over a
//! bounded thread pool — shard recoveries are completely independent (no
//! shared pool, no shared line), which is exactly what makes restart time
//! scale down with core count. Each recovery is timed individually so the
//! report can show the parallel speedup and spot straggler shards.

use crate::manifest::ShardManifest;
use crate::sharded::{Shard, ShardConfig, ShardedQueue};
use durable_queues::{QueueConfig, RecoverableQueue};
use obs::flight::EventKind;
use obs::LazyHistogram;
use pmem::{PmemPool, PoolConfig};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use store::{FileConfig, FilePool};

/// Runs `f(shard_index)` for every shard on a bounded pool of scoped
/// workers (work-stealing via an atomic claim counter) and returns the
/// results in shard order. The shared scaffold of the crash fan-out, the
/// parallel recovery, and the reshard copy/build phases.
pub(crate) fn par_map_shards<T: Send>(
    shards: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let slots: Vec<Mutex<Option<T>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(shards).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards {
                    break;
                }
                *slots[i].lock().unwrap() = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every shard was processed"))
        .collect()
}

/// Recovery timing (and pool state) of one shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardRecovery {
    /// The shard index.
    pub shard: usize,
    /// Wall-clock time of this shard's recovery procedure.
    pub latency: Duration,
    /// Effective pool size of this shard in bytes at recovery time. For
    /// file-backed shards this reflects any committed growth (shards grow
    /// independently, so sizes may diverge within one directory).
    pub pool_bytes: usize,
    /// Committed growth epoch read from the shard's pool-file header
    /// (`0` = never grown; always `0` for simulated-crash campaigns, whose
    /// pools are fixed-size).
    pub growth_epoch: u32,
}

/// Lease-layer recovery summary. The orchestrator itself recovers only the
/// shards; when a deployment consumes through the `lease` crate's peek-lock
/// wrapper, its directory open path replays the ack log afterwards and
/// fills this into the [`RecoveryReport`], so one report covers the whole
/// restart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaseRecovery {
    /// Leases that were in a consumer's hands at the crash, now queued for
    /// redelivery with an incremented delivery count.
    pub unacked: u64,
    /// Total items queued for redelivery (`unacked` + previously
    /// nacked/expired items not yet regranted at the crash).
    pub redelivered: u64,
    /// Items moved to the dead-letter queue during recovery because their
    /// next delivery would exceed the budget.
    pub dead_lettered: u64,
    /// Leases repaired at recovery because the exactly-once cursor proved
    /// their ack transaction committed (only the sidecar ack record was
    /// lost to the crash) — these are *not* redelivered.
    pub tx_acked: u64,
    /// Ack-log records replayed.
    pub log_records: u64,
}

/// One consumer group's recovery summary, filled in by the `lease` crate's
/// grouped directory open path — one entry per group, in stripe order, so
/// a restart of a fan-out deployment reports every group's cursor repair
/// in the same place as the shard replay it depends on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupRecovery {
    /// The group's name.
    pub name: String,
    /// Leases in this group's consumers' hands at the crash, requeued with
    /// an incremented delivery count.
    pub unacked: u64,
    /// Total items requeued for redelivery in this group.
    pub redelivered: u64,
    /// Items moved to this group's dead-letter queue during recovery.
    pub dead_lettered: u64,
    /// Leases repaired because the group's `(group, tid)` cursor stripe
    /// proved their ack transaction committed.
    pub tx_acked: u64,
    /// Segment-log records replayed for this group.
    pub log_records: u64,
    /// Segment files present after replay.
    pub segments: u32,
    /// Already-retired segment files deleted on open (interrupted
    /// retirement rolled forward).
    pub retired_leftovers: u32,
}

/// Per-shard recovery latencies, recorded into the process-global
/// histogram so straggler shards show up in exported percentiles too.
static RECOVER_SHARD_NS: LazyHistogram = LazyHistogram::new("shard.recover_ns");

/// One timed phase of a recovery campaign. Phase starts are stamped with
/// [`obs::clock::wall_ns`] — the same clock the flight recorder uses — so a
/// report's spans line up with a post-mortem `harness blackbox` dump.
#[derive(Clone, Debug)]
pub struct PhaseSpan {
    /// Phase name: `"manifest-resolution"`, `"shard-replay"`, or
    /// `"lease-repair"`.
    pub name: &'static str,
    /// Wall-clock start of the phase, ns since the Unix epoch.
    pub started_ns: u64,
    /// How long the phase took.
    pub wall: Duration,
}

impl PhaseSpan {
    /// Times `f`, returning its result plus the finished span, and logs the
    /// span to the flight recorder (`ordinal` is the [`EventKind`] phase
    /// number: 1 = manifest resolution, 2 = shard replay, 3 = lease repair).
    pub fn time<T>(name: &'static str, ordinal: u64, f: impl FnOnce() -> T) -> (T, PhaseSpan) {
        let started_ns = obs::clock::wall_ns();
        let begun = Instant::now();
        let value = f();
        let wall = begun.elapsed();
        obs::flight::record(EventKind::RecoveryPhase, ordinal, wall.as_nanos() as u64);
        (
            value,
            PhaseSpan {
                name,
                started_ns,
                wall,
            },
        )
    }
}

/// The outcome of one parallel recovery campaign.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Per-shard recovery latencies, in shard order.
    pub per_shard: Vec<ShardRecovery>,
    /// Wall-clock time of the whole campaign (fan-out to last completion).
    pub wall: Duration,
    /// Worker threads the campaign ran on.
    pub threads: usize,
    /// Lease-state recovery, when the deployment consumes through the
    /// peek-lock layer (`None` for plain destructive-dequeue deployments).
    pub lease: Option<LeaseRecovery>,
    /// Per-consumer-group recovery, in stripe order, when the deployment
    /// fans out to consumer groups (empty otherwise).
    pub groups: Vec<GroupRecovery>,
    /// Timed phases in execution order (manifest resolution, shard replay,
    /// and — filled in by the lease layer — lease repair). Simulated-crash
    /// recoveries have only the replay phase.
    pub phases: Vec<PhaseSpan>,
}

impl RecoveryReport {
    /// Sum of the individual shard recovery times — what a sequential
    /// recovery would have cost.
    pub fn sequential_cost(&self) -> Duration {
        self.per_shard.iter().map(|s| s.latency).sum()
    }

    /// The slowest single shard — the lower bound on any parallel schedule.
    pub fn critical_path(&self) -> Duration {
        self.per_shard
            .iter()
            .map(|s| s.latency)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total committed pool growths across all shards (`0` when no shard's
    /// pool ever grew — always the case for simulated-crash campaigns).
    pub fn total_growth_epochs(&self) -> u64 {
        self.per_shard.iter().map(|s| s.growth_epoch as u64).sum()
    }

    /// Total pool bytes across all shards at recovery time (effective,
    /// growth included).
    pub fn total_pool_bytes(&self) -> usize {
        self.per_shard.iter().map(|s| s.pool_bytes).sum()
    }

    /// Parallel speedup actually achieved (sequential cost / wall time).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            1.0
        } else {
            self.sequential_cost().as_secs_f64() / wall
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let growth = match self.total_growth_epochs() {
            0 => String::new(),
            n => format!(", {n} pool growth(s) inherited"),
        };
        let lease = match &self.lease {
            None => String::new(),
            Some(l) => {
                let repaired = match l.tx_acked {
                    0 => String::new(),
                    n => format!(", {n} tx-repaired"),
                };
                format!(
                    "; leases: {} unacked redelivered ({} total), {} dead-lettered{repaired}",
                    l.unacked, l.redelivered, l.dead_lettered
                )
            }
        };
        let groups = if self.groups.is_empty() {
            String::new()
        } else {
            let redelivered: u64 = self.groups.iter().map(|g| g.redelivered).sum();
            let dead: u64 = self.groups.iter().map(|g| g.dead_lettered).sum();
            let repaired: u64 = self.groups.iter().map(|g| g.tx_acked).sum();
            let repaired = match repaired {
                0 => String::new(),
                n => format!(", {n} tx-repaired"),
            };
            format!(
                "; {} group(s): {redelivered} redelivered, {dead} dead-lettered{repaired}",
                self.groups.len()
            )
        };
        format!(
            "recovered {} shards on {} threads in {:?} (sequential cost {:?}, critical path {:?}, speedup {:.2}x{}){}{}",
            self.per_shard.len(),
            self.threads,
            self.wall,
            self.sequential_cost(),
            self.critical_path(),
            self.speedup(),
            growth,
            lease,
            groups
        )
    }
}

/// Snapshots and recovers whole sharded queues.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOrchestrator {
    threads: usize,
}

impl RecoveryOrchestrator {
    /// An orchestrator running campaigns on `threads` workers (≥ 1).
    pub fn new(threads: usize) -> Self {
        RecoveryOrchestrator {
            threads: threads.max(1),
        }
    }

    /// An orchestrator using all available parallelism.
    pub fn available_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Simulates a full-system crash: snapshots every shard's pool
    /// (fanning the `simulate_crash` calls out across the worker pool) and
    /// returns the crashed images in shard order. The original queue is
    /// untouched, so one execution can be crashed repeatedly.
    pub fn crash<Q: RecoverableQueue>(&self, queue: &ShardedQueue<Q>) -> Vec<Arc<PmemPool>> {
        self.crash_with_evictions(queue, 0.0, 0)
    }

    /// Like [`crash`](Self::crash), with each cache line of each shard
    /// additionally written back with probability `eviction_probability`
    /// before the power fails — the adversary every recovery procedure must
    /// tolerate.
    pub fn crash_with_evictions<Q: RecoverableQueue>(
        &self,
        queue: &ShardedQueue<Q>,
        eviction_probability: f64,
        seed: u64,
    ) -> Vec<Arc<PmemPool>> {
        par_map_shards(queue.shard_count(), self.threads, |i| {
            Arc::new(
                queue
                    .shard_pool(i)
                    .simulate_crash_with_evictions(eviction_probability, seed ^ (i as u64) << 32),
            )
        })
    }

    /// Recovers a sharded queue from `pools` (one crashed image per shard,
    /// in shard order), running the per-shard recovery procedures in
    /// parallel on the worker pool. Returns the recovered queue plus the
    /// per-shard latency report.
    ///
    /// Depth estimates restart at zero: the load-aware policy re-learns the
    /// balance from live traffic, and correctness never depends on the
    /// estimates.
    pub fn recover<Q: RecoverableQueue>(
        &self,
        pools: Vec<Arc<PmemPool>>,
        config: ShardConfig,
    ) -> (ShardedQueue<Q>, RecoveryReport) {
        assert_eq!(pools.len(), config.shards, "one crashed image per shard");
        let n = pools.len();
        let started = Instant::now();
        let (recovered, replay_phase) = PhaseSpan::time("shard-replay", 2, || {
            par_map_shards(n, self.threads, |i| {
                let pool = Arc::clone(&pools[i]);
                let begun = Instant::now();
                let queue = Q::recover(Arc::clone(&pool), config.queue);
                (Shard { queue, pool }, begun.elapsed())
            })
        });
        let wall = started.elapsed();
        let mut shards = Vec::with_capacity(n);
        let mut per_shard = Vec::with_capacity(n);
        for (i, (shard, latency)) in recovered.into_iter().enumerate() {
            RECOVER_SHARD_NS.record(latency.as_nanos() as u64);
            per_shard.push(ShardRecovery {
                shard: i,
                latency,
                pool_bytes: shard.pool.len(),
                growth_epoch: shard.pool.growth_epoch(),
            });
            shards.push(shard);
        }
        let queue = ShardedQueue::from_shards(shards.into_boxed_slice(), config);
        let report = RecoveryReport {
            per_shard,
            wall,
            threads: self.threads.min(n).max(1),
            lease: None,
            groups: Vec::new(),
            phases: vec![replay_phase],
        };
        (queue, report)
    }

    /// Convenience: [`crash`](Self::crash) followed by
    /// [`recover`](Self::recover) with the queue's own configuration.
    pub fn crash_and_recover<Q: RecoverableQueue>(
        &self,
        queue: &ShardedQueue<Q>,
    ) -> (ShardedQueue<Q>, RecoveryReport) {
        let config = *queue.shard_config();
        self.recover(self.crash(queue), config)
    }

    // ------------------------------------------------------------------
    // File-backed directories (real restarts, not simulated crashes)
    // ------------------------------------------------------------------

    /// Creates (or reinitialises) a **file-backed** sharded queue in `dir`:
    /// one pool file per shard (created in parallel on the worker pool,
    /// `config.shards` × `file.size` bytes on disk) plus the CRC-checked
    /// [`ShardManifest`] recording shard count, routing policy and pool-file
    /// names. The resulting queue survives a real process restart — reopen
    /// it with [`open_dir`](Self::open_dir).
    pub fn create_dir<Q: RecoverableQueue>(
        &self,
        dir: &Path,
        config: ShardConfig,
        file: FileConfig,
    ) -> io::Result<ShardedQueue<Q>> {
        std::fs::create_dir_all(dir)?;
        let manifest = ShardManifest::new(config.shards, config.policy);
        let paths = manifest.pool_paths(dir);
        let pools: Vec<Arc<PmemPool>> = par_map_shards(config.shards, self.threads, |i| {
            FilePool::create(&paths[i], file).map(FilePool::into_pool)
        })
        .into_iter()
        .collect::<io::Result<_>>()?;
        // The manifest is written only after every pool file exists, so a
        // crash during creation leaves a directory `open_dir` refuses (no
        // manifest) rather than a map naming missing files.
        manifest.write(dir)?;
        Ok(ShardedQueue::create_on(pools, config))
    }

    /// Reopens a file-backed sharded queue from `dir` after a restart: reads
    /// the [`ShardManifest`] (the manifest, not the caller, is the authority
    /// on shard count and routing policy), validates every shard's pool-file
    /// header — each shard's effective size comes from its own header, so
    /// shards that grew independently reopen at their grown sizes — opens
    /// the pools and runs the per-shard `Q::recover` procedures in parallel
    /// on the worker pool, timing each shard exactly like
    /// [`recover`](Self::recover). Per-shard sizes and inherited growth
    /// epochs are reported in the [`RecoveryReport`].
    ///
    /// Works identically after a clean shutdown and after a `kill -9`; the
    /// returned manifest tells the caller what was recovered. A reshard
    /// interrupted by the crash is resolved first — rolled back or forward
    /// to whichever shard count the manifest makes authoritative (see
    /// [`crate::reshard::resolve_reshard`], which can be called directly
    /// when the caller wants to know how the directory was resolved).
    ///
    /// ```
    /// use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig};
    /// use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig};
    /// use store::FileConfig;
    ///
    /// let dir = std::env::temp_dir().join(format!("open-dir-doc-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let orch = RecoveryOrchestrator::new(2);
    ///
    /// // First life: create a 2-shard directory and leave an item behind.
    /// let config = ShardConfig {
    ///     shards: 2,
    ///     queue: QueueConfig::small_test(),
    ///     pool: pmem::PoolConfig::test_with_size(4 << 20),
    ///     policy: RoutePolicy::RoundRobin,
    /// };
    /// let queue = orch
    ///     .create_dir::<OptUnlinkedQueue>(&dir, config, FileConfig::with_size(4 << 20))?;
    /// queue.enqueue(0, 7);
    /// drop(queue); // orderly close; a kill -9 would recover identically
    ///
    /// // Second life: the manifest dictates shard count and policy.
    /// let (queue, report, manifest) =
    ///     orch.open_dir::<OptUnlinkedQueue>(&dir, QueueConfig::small_test())?;
    /// assert_eq!(manifest.shards(), 2);
    /// assert_eq!(report.per_shard.len(), 2);
    /// assert_eq!(queue.dequeue(0), Some(7));
    /// drop(queue);
    /// std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    ///
    /// Pools are reopened under the default (process-crash) fence policy; a
    /// deployment created with [`store::SyncPolicy::PowerFail`] must reopen
    /// with [`open_dir_with_sync`](Self::open_dir_with_sync) to keep its
    /// power-fail guarantee for post-recovery traffic.
    pub fn open_dir<Q: RecoverableQueue>(
        &self,
        dir: &Path,
        queue: QueueConfig,
    ) -> io::Result<(ShardedQueue<Q>, RecoveryReport, ShardManifest)> {
        self.open_dir_with_sync(dir, queue, store::SyncPolicy::default())
    }

    /// [`open_dir`](Self::open_dir) with an explicit fence durability
    /// policy for the reopened pool files.
    pub fn open_dir_with_sync<Q: RecoverableQueue>(
        &self,
        dir: &Path,
        queue: QueueConfig,
        sync: store::SyncPolicy,
    ) -> io::Result<(ShardedQueue<Q>, RecoveryReport, ShardManifest)> {
        self.open_dir_with_growth(dir, queue, sync, 0)
    }

    /// [`open_dir`](Self::open_dir) with an explicit fence durability
    /// policy and growth step (`0` = fixed-size) for the reopened pool
    /// files. A directory whose shards grew past their creation ceiling in
    /// a previous life is usually still under the traffic that grew them —
    /// and its pools are near-full, so even `Q::recover`'s own allocator
    /// areas may need room; reopen it elastic to keep going.
    pub fn open_dir_with_growth<Q: RecoverableQueue>(
        &self,
        dir: &Path,
        queue: QueueConfig,
        sync: store::SyncPolicy,
        grow_step: usize,
    ) -> io::Result<(ShardedQueue<Q>, RecoveryReport, ShardManifest)> {
        let started = Instant::now();
        // A crash may have interrupted a reshard: roll it back or forward
        // before trusting the manifest's pool-file list.
        let (resolved, resolution_phase) = PhaseSpan::time("manifest-resolution", 1, || {
            crate::reshard::resolve_reshard(dir).and_then(|_| ShardManifest::read(dir))
        });
        let manifest = resolved?;
        let paths = manifest.pool_paths(dir);
        let n = manifest.shards();
        obs::flight::record(EventKind::RecoveryStart, n as u64, 0);
        let (recovered, replay_phase) = PhaseSpan::time("shard-replay", 2, || {
            par_map_shards(n, self.threads, |i| -> io::Result<(Shard<Q>, Duration)> {
                // Each shard's header is the authority on its own effective
                // size — shards grow independently, so neither the manifest
                // nor the siblings can know it. `open_with_growth` validates
                // the header (magic, versions, CRCs, grown size, watermark
                // bounds) before mapping.
                let pool = FilePool::open_with_growth(&paths[i], sync, grow_step)?.into_pool();
                let begun = Instant::now();
                let q = Q::recover(Arc::clone(&pool), queue);
                Ok((Shard { queue: q, pool }, begun.elapsed()))
            })
            .into_iter()
            .collect::<io::Result<Vec<(Shard<Q>, Duration)>>>()
        });
        let recovered = recovered?;
        let wall = started.elapsed();
        obs::flight::record(EventKind::RecoveryDone, n as u64, wall.as_nanos() as u64);
        let config = ShardConfig {
            shards: n,
            queue,
            // Sizes may diverge across grown shards; size the (sim-facing)
            // config from the largest so derived pools are never smaller.
            pool: PoolConfig::test_with_size(
                recovered.iter().map(|(s, _)| s.pool.len()).max().unwrap(),
            ),
            policy: manifest.policy,
        };
        let mut shards = Vec::with_capacity(n);
        let mut per_shard = Vec::with_capacity(n);
        for (i, (shard, latency)) in recovered.into_iter().enumerate() {
            RECOVER_SHARD_NS.record(latency.as_nanos() as u64);
            per_shard.push(ShardRecovery {
                shard: i,
                latency,
                pool_bytes: shard.pool.len(),
                growth_epoch: shard.pool.growth_epoch(),
            });
            shards.push(shard);
        }
        let queue = ShardedQueue::from_shards(shards.into_boxed_slice(), config);
        let report = RecoveryReport {
            per_shard,
            wall,
            threads: self.threads.min(n).max(1),
            lease: None,
            groups: Vec::new(),
            phases: vec![resolution_phase, replay_phase],
        };
        Ok((queue, report, manifest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RoutePolicy;
    use durable_queues::{DurableQueue, OptUnlinkedQueue};

    #[test]
    fn crash_and_recover_preserves_every_item_per_shard() {
        let q = ShardedQueue::<OptUnlinkedQueue>::create(
            ShardConfig::small_test(4).with_policy(RoutePolicy::RoundRobin),
        );
        for i in 1..=100u64 {
            q.enqueue(0, i);
        }
        for _ in 0..20 {
            assert!(q.dequeue(0).is_some());
        }
        let orch = RecoveryOrchestrator::new(4);
        let (recovered, report) = orch.crash_and_recover(&q);
        assert_eq!(report.per_shard.len(), 4);
        assert!(report.speedup() > 0.0);
        let mut rest: Vec<u64> = std::iter::from_fn(|| recovered.dequeue(0)).collect();
        rest.sort_unstable();
        assert_eq!(rest, (21..=100).collect::<Vec<_>>());
    }

    #[test]
    fn report_accounts_every_shard_once() {
        let q = ShardedQueue::<OptUnlinkedQueue>::create(ShardConfig::small_test(8));
        for i in 1..=64u64 {
            q.enqueue(0, i);
        }
        let orch = RecoveryOrchestrator::new(3);
        let (_, report) = orch.crash_and_recover(&q);
        let shards: Vec<usize> = report.per_shard.iter().map(|s| s.shard).collect();
        assert_eq!(shards, (0..8).collect::<Vec<_>>());
        assert!(report.sequential_cost() >= report.critical_path());
        assert_eq!(report.threads, 3);
        assert!(report.summary().contains("8 shards"));
        // Simulated pools are fixed-size: no growth to inherit, and the
        // per-shard sizes are the pools' actual sizes.
        assert_eq!(report.total_growth_epochs(), 0);
        assert!(!report.summary().contains("growth"));
        assert!(report.per_shard.iter().all(|s| s.growth_epoch == 0));
        assert_eq!(
            report.total_pool_bytes(),
            report.per_shard.iter().map(|s| s.pool_bytes).sum::<usize>()
        );
        assert!(report.per_shard.iter().all(|s| s.pool_bytes > 0));
    }

    #[test]
    fn orchestrator_clamps_to_at_least_one_thread() {
        assert_eq!(RecoveryOrchestrator::new(0).threads(), 1);
        assert!(RecoveryOrchestrator::available_parallelism().threads() >= 1);
    }

    #[test]
    fn the_original_queue_survives_the_crash_snapshot() {
        let q = ShardedQueue::<OptUnlinkedQueue>::create(ShardConfig::small_test(2));
        q.enqueue(0, 7);
        let orch = RecoveryOrchestrator::new(2);
        let _ = orch.crash(&q);
        assert_eq!(q.dequeue(0), Some(7));
    }
}
