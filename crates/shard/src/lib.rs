//! # shard — horizontal scaling for the durable-queue family
//!
//! A single durable queue — even one meeting the one-persist-per-operation
//! lower bound — is serialized on one head/tail pair. This crate adds the
//! layer production queueing systems put on top: a [`ShardedQueue`] that
//! partitions traffic across `N` independent shards, each owning its own
//! [`pmem::PmemPool`] and inner queue, behind the same
//! [`durable_queues::DurableQueue`] interface. Because the composition is
//! generic over [`durable_queues::RecoverableQueue`], every algorithm in the
//! workspace (the paper's four amendment queues, the three baselines, and
//! both PTM baselines) scales the same way.
//!
//! Four parts:
//!
//! * [`RoutePolicy`] — how operations pick a shard: per-thread round-robin,
//!   key hashing (via the [`durable_queues::KeyedQueue`] extension trait,
//!   giving per-key FIFO order), or load-aware balancing on per-shard depth
//!   estimates.
//! * [`ShardedQueue`] — the composition itself, with aggregated
//!   [`pmem::StatsSnapshot`] accounting (the sum of every shard's persist
//!   counters) plus per-shard breakdowns for the bench layer.
//! * [`RecoveryOrchestrator`] — coherent crash fan-out over all shards and
//!   **parallel** recovery across a bounded thread pool, timed per shard
//!   ([`RecoveryReport`]) so restart latency and straggler shards are
//!   visible. For file-backed deployments,
//!   [`create_dir`](RecoveryOrchestrator::create_dir) /
//!   [`open_dir`](RecoveryOrchestrator::open_dir) persist and recover a
//!   whole directory of pool files under a CRC-checked [`ShardManifest`] —
//!   the manifest, not the caller, is the authority on shard count and
//!   routing policy.
//! * [`reshard`] — elastic shard counts:
//!   [`reshard_dir`](RecoveryOrchestrator::reshard_dir) splits or merges a
//!   directory from N to N′ shards behind a crash-safe two-phase manifest
//!   protocol (write-ahead [`ReshardIntent`], scratch-copy drain, atomic
//!   manifest commit); an interrupted reshard is rolled back or forward by
//!   [`resolve_reshard`] on the next `open_dir`.
//!
//! ```
//! use durable_queues::{DurableQueue, KeyedQueue, OptUnlinkedQueue};
//! use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
//!
//! let q = ShardedQueue::<OptUnlinkedQueue>::create(
//!     ShardConfig::small_test(4).with_policy(RoutePolicy::KeyHash),
//! );
//! q.enqueue_keyed(0, /*key*/ 17, 1);
//! q.enqueue_keyed(0, 17, 2); // same key: same shard, FIFO after the 1
//!
//! // Crash all four shards coherently, then recover them in parallel.
//! let orch = RecoveryOrchestrator::new(4);
//! let (recovered, report) = orch.crash_and_recover(&q);
//! assert_eq!(report.per_shard.len(), 4);
//! assert_eq!(recovered.dequeue(0), Some(1));
//! assert_eq!(recovered.dequeue(0), Some(2));
//! ```
//!
//! What sharding trades away: global FIFO order. Each shard remains durably
//! linearizable and per-key order survives under key-hash routing, which is
//! the contract real partitioned brokers (Kafka partitions, sharded AMQP
//! queues) offer.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod manifest;
pub mod recovery;
pub mod reshard;
pub mod route;
pub mod sharded;

pub use manifest::{ReshardIntent, ShardManifest, INTENT_FILE, MANIFEST_FILE, MANIFEST_VERSION};
pub use recovery::{
    GroupRecovery, LeaseRecovery, PhaseSpan, RecoveryOrchestrator, RecoveryReport, ShardRecovery,
};
pub use reshard::{resolve_reshard, ReshardReport, ReshardResolution};
pub use route::RoutePolicy;
pub use sharded::{ShardConfig, ShardedQueue};
