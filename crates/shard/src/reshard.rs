//! Elastic resharding: split or merge a file-backed shard directory.
//!
//! [`RecoveryOrchestrator::reshard_dir`] converts a directory created by
//! `create_dir` from N shards to N′ — the first operation in this workspace
//! that rewrites persistent state *structurally* (replacing pool files)
//! rather than append-wise. Items are moved by draining each source shard
//! through its ordinary [`DurableQueue`](durable_queues::DurableQueue)
//! interface into freshly created [`store::FilePool`]-backed destination
//! shards:
//!
//! * under [`RoutePolicy::KeyHash`], each drained item is re-routed by its
//!   key against the new shard count, so **per-key FIFO order survives the
//!   reshard** (a key's items live on one source shard in FIFO order and
//!   are re-enqueued, in that order, onto the key's one new home shard);
//! * under [`RoutePolicy::RoundRobin`] / [`RoutePolicy::LoadAware`], each
//!   source stream is dealt round-robin across the destinations, so items
//!   that end up on the same destination shard preserve their source-shard
//!   order — the same **per-shard FIFO** contract those policies already
//!   offer.
//!
//! ## Crash safety: the two-phase manifest protocol
//!
//! The operation never mutates a source pool file. It drains *scratch
//! copies*, builds destinations in `*.tmp` files, and uses the shard-map
//! manifest as a write-ahead intent log:
//!
//! ```text
//!  1. write SHARDS.manifest.reshard        (intent: old + new file lists)
//!  2. copy sources -> .<src>.reshard-src   (scratch; sources untouched)
//!  3. recover scratch, drain into <dst>.tmp destination pools
//!  4. close destinations (full msync+fsync), rename <dst>.tmp -> <dst>
//!  5. rewrite SHARDS.manifest atomically   <- THE COMMIT POINT
//!  6. delete sources + scratch, delete the intent record
//! ```
//!
//! A crash (or `kill -9`) at any point leaves a directory
//! [`resolve_reshard`] — run automatically by
//! [`RecoveryOrchestrator::open_dir`] — returns to one of the two
//! consistent states: before step 5 the manifest still names the sources,
//! so the destinations and scratch copies are deleted (**rollback**, no
//! item was ever moved out of the sources); from step 5 on the manifest
//! names the destinations, so the leftover sources and scratch are deleted
//! (**roll-forward**, the destinations were fully durable before the
//! commit rename). Either way the resident items are exactly preserved.

use crate::manifest::{ReshardIntent, ShardManifest};
use crate::recovery::{par_map_shards, RecoveryOrchestrator};
use crate::route::{mix, RoutePolicy};
use durable_queues::{QueueConfig, RecoverableQueue};
use obs::flight::EventKind;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use store::{copy_pool_file, FileConfig, FilePool};

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Persists a directory's entries (renames/unlinks) on platforms where
/// directories are fsyncable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Fault-injection hook for the crash tests: aborts the process (no
/// destructors, like a `kill -9`) when the named environment variable is
/// set. The two points — right after the intent write and right after the
/// manifest commit — pin down the rollback and roll-forward sides of the
/// protocol deterministically; random mid-drain kills cover the rest.
fn crash_point(name: &str) {
    if std::env::var_os(name).is_some() {
        std::process::abort();
    }
}

/// The scratch-copy name a reshard uses for source pool `src`.
fn scratch_name(src: &str) -> String {
    format!(".{src}.reshard-src")
}

/// The build name a reshard uses for destination pool `dst` before commit.
fn tmp_name(dst: &str) -> String {
    format!("{dst}.tmp")
}

/// The generation number for the next set of destination pool files.
/// Creation names pools `shard-NN.pool` (generation 0); each reshard bumps
/// the generation (`shard-g1-NN.pool`, `shard-g2-NN.pool`, ...) so
/// destination names can never collide with the sources they replace.
fn next_generation(files: &[String]) -> u64 {
    files
        .iter()
        .filter_map(|f| {
            f.strip_prefix("shard-g")?
                .split('-')
                .next()?
                .parse::<u64>()
                .ok()
        })
        .max()
        .map(|g| g + 1)
        .unwrap_or(1)
}

/// How an interrupted reshard found at open time was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReshardResolution {
    /// The crash hit **before** the manifest commit: destinations and
    /// scratch copies were deleted, the directory is back at `from` shards
    /// with every resident item untouched.
    RolledBack {
        /// Shard count the interrupted reshard started from (still live).
        from: usize,
        /// Shard count the interrupted reshard was converting to.
        to: usize,
    },
    /// The crash hit **after** the manifest commit: leftover sources and
    /// scratch copies were deleted, the directory is at `to` shards with
    /// every resident item moved.
    RolledForward {
        /// Shard count the completed reshard converted from (now deleted).
        from: usize,
        /// Shard count the directory now has.
        to: usize,
    },
}

impl ReshardResolution {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        match self {
            ReshardResolution::RolledBack { from, to } => {
                format!("rolled interrupted reshard {from} -> {to} back to {from} shards")
            }
            ReshardResolution::RolledForward { from, to } => {
                format!("rolled interrupted reshard {from} -> {to} forward to {to} shards")
            }
        }
    }
}

/// The outcome of one completed resharding operation.
#[derive(Clone, Copy, Debug)]
pub struct ReshardReport {
    /// Shard count before.
    pub from: usize,
    /// Shard count after.
    pub to: usize,
    /// Routing policy of the directory (unchanged by the reshard).
    pub policy: RoutePolicy,
    /// Resident items moved from the sources to the destinations.
    pub items_moved: u64,
    /// Wall-clock time of the whole operation.
    pub wall: Duration,
    /// Time spent copying, recovering and draining (the data plane).
    pub drain: Duration,
    /// Time spent on the commit (renames, manifest rewrite, cleanup).
    pub commit: Duration,
}

impl ReshardReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "resharded {} -> {} shards ({}, {} items) in {:.3} ms (drain {:.3} ms, commit {:.3} ms)",
            self.from,
            self.to,
            self.policy.key(),
            self.items_moved,
            self.wall.as_secs_f64() * 1e3,
            self.drain.as_secs_f64() * 1e3,
            self.commit.as_secs_f64() * 1e3,
        )
    }
}

/// Detects and resolves an interrupted reshard in `dir`, rolling it back or
/// forward to whichever consistent state the crash left authoritative (see
/// the [module docs](self)). Returns `Ok(None)` when no reshard was in
/// flight. Idempotent: a second call after a successful resolution is a
/// no-op.
///
/// [`RecoveryOrchestrator::open_dir`] and
/// [`RecoveryOrchestrator::reshard_dir`] both run this automatically;
/// call it directly only to learn *how* a directory was resolved.
pub fn resolve_reshard(dir: &Path) -> io::Result<Option<ReshardResolution>> {
    if !ReshardIntent::exists(dir) {
        return Ok(None);
    }
    let intent = ReshardIntent::read(dir)?;
    let manifest = ShardManifest::read(dir)?;
    let remove = |name: &str| match fs::remove_file(dir.join(name)) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    };
    let resolution = if manifest.pool_files == intent.new_files {
        // The commit landed: the destinations are authoritative. Finish the
        // cleanup the interrupted reshard never got to.
        for f in &intent.old_files {
            remove(f)?;
            remove(&scratch_name(f))?;
        }
        for f in &intent.new_files {
            remove(&tmp_name(f))?;
        }
        ReshardResolution::RolledForward {
            from: intent.from_shards(),
            to: intent.to_shards(),
        }
    } else if manifest.pool_files == intent.old_files {
        // The commit never landed: the sources are authoritative and were
        // never mutated. Destinations (committed-name or `.tmp`) and
        // scratch copies are garbage.
        for f in &intent.new_files {
            remove(f)?;
            remove(&tmp_name(f))?;
        }
        for f in &intent.old_files {
            remove(&scratch_name(f))?;
        }
        ReshardResolution::RolledBack {
            from: intent.from_shards(),
            to: intent.to_shards(),
        }
    } else {
        return Err(invalid(format!(
            "{}: manifest matches neither side of the reshard intent",
            dir.display()
        )));
    };
    sync_dir(dir)?;
    ReshardIntent::remove(dir)?;
    let forward = matches!(resolution, ReshardResolution::RolledForward { .. });
    obs::flight::record(EventKind::ReshardResolved, forward as u64, 0);
    Ok(Some(resolution))
}

impl RecoveryOrchestrator {
    /// Reshards the file-backed directory `dir` from its current shard
    /// count to `to_shards`, splitting or merging the resident items (see
    /// the [module docs](self) for ordering guarantees and the crash-safety
    /// protocol). The directory must be closed (no live queue on it); it
    /// may be freshly crash-recovered — the drain runs each source shard's
    /// ordinary `Q::recover` first.
    ///
    /// Under the key-hash policy items are routed by themselves (`key =
    /// item`); when keys are *encoded inside* items, use
    /// [`reshard_dir_with`](Self::reshard_dir_with) and pass the decoder.
    ///
    /// `to_shards` may equal the current count: that degenerates to a
    /// compaction pass (every pool file is rebuilt with only live items).
    pub fn reshard_dir<Q: RecoverableQueue>(
        &self,
        dir: &Path,
        to_shards: usize,
        queue: QueueConfig,
    ) -> io::Result<ReshardReport> {
        self.reshard_dir_with::<Q>(dir, to_shards, queue, None, |item| item)
    }

    /// [`reshard_dir`](Self::reshard_dir) with an explicit destination pool
    /// configuration (`None` sizes destinations from the sources' persisted
    /// watermarks) and a key extractor used to re-route items under the
    /// key-hash policy. `key_of` must return, for every resident item, the
    /// key it was originally enqueued with — the reshard routes each item
    /// to `mix(key) % to_shards`, exactly where the reopened queue's
    /// `shard_for_key` will look for it.
    pub fn reshard_dir_with<Q: RecoverableQueue>(
        &self,
        dir: &Path,
        to_shards: usize,
        queue: QueueConfig,
        dest_file: Option<FileConfig>,
        key_of: impl Fn(u64) -> u64,
    ) -> io::Result<ReshardReport> {
        assert!(to_shards >= 1, "a shard directory needs at least 1 shard");
        let started = Instant::now();
        // Finish any interrupted reshard first, so the manifest and the
        // directory contents agree before a new intent is written.
        resolve_reshard(dir)?;
        let manifest = ShardManifest::read(dir)?;
        let from_shards = manifest.shards();
        let policy = manifest.policy;
        let old_paths = manifest.pool_paths(dir);

        // Destination sizing, unless overridden: every destination can hold
        // the entire resident data set (skew-proof — key hashing may route
        // every item to one shard) plus allocator slack, and is never
        // smaller than the largest source pool. Geometry reads report the
        // *effective* (grown) size and the watermark within it, so sources
        // that outgrew their creation size are never under-provisioned.
        let file = match dest_file {
            Some(f) => f,
            None => {
                let mut total_used = 0usize;
                let mut max_size = 0usize;
                for p in &old_paths {
                    let g = FilePool::read_geometry(p)?;
                    total_used += g.used_bytes();
                    max_size = max_size.max(g.pool_size);
                }
                let slack = queue.max_threads * queue.area_size as usize * 2 + (8 << 20);
                FileConfig::with_size(max_size.max(total_used + slack))
            }
        };

        let generation = next_generation(&manifest.pool_files);
        let new_files: Vec<String> = (0..to_shards)
            .map(|i| format!("shard-g{generation}-{i:02}.pool"))
            .collect();
        for f in &new_files {
            if manifest.pool_files.contains(f) {
                return Err(invalid(format!(
                    "{}: destination {f} collides with a live pool file",
                    dir.display()
                )));
            }
        }

        // Write-ahead: from here on, a crash at ANY point resolves cleanly.
        let intent = ReshardIntent {
            old_files: manifest.pool_files.clone(),
            new_files: new_files.clone(),
        };
        intent.write(dir)?;
        // Durable intent on disk: log it before the crash-injection hook so
        // a kill here shows the reshard as started-but-uncommitted.
        obs::flight::record(
            EventKind::ReshardIntent,
            from_shards as u64,
            to_shards as u64,
        );
        crash_point("DQ_RESHARD_ABORT_AFTER_INTENT");

        // ---- Phase 1: the data plane. Sources are never mutated; every
        // write goes to a scratch copy or a `.tmp` destination.
        let drain_started = Instant::now();
        let scratch: Vec<PathBuf> = manifest
            .pool_files
            .iter()
            .map(|f| dir.join(scratch_name(f)))
            .collect();
        par_map_shards(from_shards, self.threads(), |i| {
            copy_pool_file(&old_paths[i], &scratch[i]).map(|_| ())
        })
        .into_iter()
        .collect::<io::Result<Vec<()>>>()?;
        // A source that grew under load is typically near-full, and
        // `Q::recover` + the drain allocate fresh designated areas on top of
        // the copied heap; the scratch is throwaway, so open it elastic with
        // enough step for the allocator's per-thread areas.
        let scratch_grow = (queue.max_threads * queue.area_size as usize).max(1 << 20);
        let sources: Vec<Q> = par_map_shards(from_shards, self.threads(), |i| {
            FilePool::open_with_growth(&scratch[i], store::SyncPolicy::default(), scratch_grow)
                .map(|p| Q::recover(p.into_pool(), queue))
        })
        .into_iter()
        .collect::<io::Result<_>>()?;
        let dest_tmp: Vec<PathBuf> = new_files.iter().map(|f| dir.join(tmp_name(f))).collect();
        let dests: Vec<Q> = par_map_shards(to_shards, self.threads(), |i| {
            FilePool::create(&dest_tmp[i], file).map(|p| Q::create(p.into_pool(), queue))
        })
        .into_iter()
        .collect::<io::Result<_>>()?;

        // Drain sequentially in shard order: deterministic routing, and a
        // single logical thread (tid 0) on every queue.
        let mut items_moved = 0u64;
        let mut rr_next = 0usize;
        for source in &sources {
            while let Some(item) = source.dequeue(0) {
                let dest = match policy {
                    RoutePolicy::KeyHash => (mix(key_of(item)) % to_shards as u64) as usize,
                    RoutePolicy::RoundRobin | RoutePolicy::LoadAware => {
                        let d = rr_next;
                        rr_next = (rr_next + 1) % to_shards;
                        d
                    }
                };
                dests[dest].enqueue(0, item);
                items_moved += 1;
            }
        }
        drop(sources);
        // Orderly close of every destination: full msync + fsync, header
        // marked clean. The destinations are fully durable BEFORE any
        // rename makes them visible under their committed names.
        drop(dests);
        let drain = drain_started.elapsed();

        // ---- Phase 2: commit. The manifest rewrite is the atomic switch;
        // everything after it is cleanup that a crash merely postpones.
        let commit_started = Instant::now();
        for (tmp, f) in dest_tmp.iter().zip(&new_files) {
            fs::rename(tmp, dir.join(f))?;
        }
        sync_dir(dir)?;
        ShardManifest {
            policy,
            pool_files: new_files,
        }
        .write(dir)?;
        obs::flight::record(EventKind::ReshardCommit, to_shards as u64, items_moved);
        crash_point("DQ_RESHARD_ABORT_AFTER_COMMIT");
        for (path, f) in old_paths.iter().zip(&manifest.pool_files) {
            fs::remove_file(path)?;
            let _ = fs::remove_file(dir.join(scratch_name(f)));
        }
        sync_dir(dir)?;
        ReshardIntent::remove(dir)?;
        let commit = commit_started.elapsed();

        Ok(ReshardReport {
            from: from_shards,
            to: to_shards,
            policy,
            items_moved,
            wall: started.elapsed(),
            drain,
            commit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardConfig;
    use durable_queues::{DurableQueue, KeyedQueue, OptUnlinkedQueue};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shard-reshard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(shards: usize, policy: RoutePolicy) -> ShardConfig {
        ShardConfig {
            shards,
            queue: QueueConfig::small_test(),
            pool: pmem::PoolConfig::test_with_size(4 << 20),
            policy,
        }
    }

    fn file() -> FileConfig {
        FileConfig::with_size(4 << 20)
    }

    #[test]
    fn split_then_merge_preserves_the_item_set() {
        let dir = temp_dir("roundtrip");
        let orch = RecoveryOrchestrator::new(4);
        {
            let q: crate::ShardedQueue<OptUnlinkedQueue> = orch
                .create_dir(&dir, config(2, RoutePolicy::RoundRobin), file())
                .unwrap();
            for i in 1..=500u64 {
                q.enqueue(0, i);
            }
        }
        let report = orch
            .reshard_dir::<OptUnlinkedQueue>(&dir, 8, QueueConfig::small_test())
            .unwrap();
        assert_eq!((report.from, report.to), (2, 8));
        assert_eq!(report.items_moved, 500);
        assert!(report.summary().contains("2 -> 8"));

        let report = orch
            .reshard_dir::<OptUnlinkedQueue>(&dir, 3, QueueConfig::small_test())
            .unwrap();
        assert_eq!((report.from, report.to), (8, 3));
        assert_eq!(report.items_moved, 500);

        let (q, _, manifest) = orch
            .open_dir::<OptUnlinkedQueue>(&dir, QueueConfig::small_test())
            .unwrap();
        assert_eq!(manifest.shards(), 3);
        // Generations bump on every reshard, so names never collide.
        assert!(manifest.pool_files[0].starts_with("shard-g2-"));
        let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
        got.sort_unstable();
        assert_eq!(got, (1..=500).collect::<Vec<_>>());
        drop(q);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grown_sources_reshard_with_destinations_sized_from_grown_geometry() {
        // Shards created deliberately tiny grow past their creation ceiling
        // under load; the reshard must size destinations from the *grown*
        // geometry (effective size + watermark), not the creation size.
        let dir = temp_dir("grown");
        let orch = RecoveryOrchestrator::new(2);
        let items = 8_000u64;
        {
            let q: crate::ShardedQueue<OptUnlinkedQueue> = orch
                .create_dir(
                    &dir,
                    config(2, RoutePolicy::RoundRobin),
                    FileConfig::with_size(128 << 10).with_growth(128 << 10),
                )
                .unwrap();
            for i in 1..=items {
                q.enqueue(0, i);
            }
        }
        let manifest = crate::ShardManifest::read(&dir).unwrap();
        let grown: u32 = manifest
            .pool_paths(&dir)
            .iter()
            .map(|p| store::FilePool::read_geometry(p).unwrap().growth_epoch)
            .sum();
        assert!(grown >= 2, "both tiny shards must have grown, got {grown}");

        let report = orch
            .reshard_dir::<OptUnlinkedQueue>(&dir, 1, QueueConfig::small_test())
            .unwrap();
        assert_eq!(report.items_moved, items);

        let (q, recovery, manifest) = orch
            .open_dir::<OptUnlinkedQueue>(&dir, QueueConfig::small_test())
            .unwrap();
        assert_eq!(manifest.shards(), 1);
        // The merged destination was built fresh at its (grown-aware) size:
        // it holds every item without having needed to grow itself.
        assert_eq!(recovery.total_growth_epochs(), 0);
        let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
        got.sort_unstable();
        assert_eq!(got.len(), items as usize);
        assert_eq!(got, (1..=items).collect::<Vec<_>>());
        drop(q);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keyhash_reshard_rehomes_every_key_with_fifo_intact() {
        let dir = temp_dir("keyhash");
        let orch = RecoveryOrchestrator::new(2);
        let encode = |key: u64, seq: u64| (key << 32) | seq;
        {
            let q: crate::ShardedQueue<OptUnlinkedQueue> = orch
                .create_dir(&dir, config(4, RoutePolicy::KeyHash), file())
                .unwrap();
            for seq in 1..=50u64 {
                for key in 0..10u64 {
                    q.enqueue_keyed(0, key, encode(key, seq));
                }
            }
        }
        let report = orch
            .reshard_dir_with::<OptUnlinkedQueue>(
                &dir,
                2,
                QueueConfig::small_test(),
                None,
                |item| item >> 32,
            )
            .unwrap();
        assert_eq!(report.items_moved, 500);
        assert_eq!(report.policy, RoutePolicy::KeyHash);

        let (q, _, manifest) = orch
            .open_dir::<OptUnlinkedQueue>(&dir, QueueConfig::small_test())
            .unwrap();
        assert_eq!(manifest.shards(), 2);
        // A post-reshard keyed enqueue lands behind its key's moved items.
        for key in 0..10u64 {
            q.enqueue_keyed(0, key, encode(key, 51));
        }
        let mut last = std::collections::HashMap::new();
        let mut counts = std::collections::HashMap::new();
        while let Some(v) = q.dequeue(0) {
            let (key, seq) = (v >> 32, v & 0xFFFF_FFFF);
            if let Some(prev) = last.insert(key, seq) {
                assert!(seq > prev, "per-key FIFO broken for key {key}");
            }
            *counts.entry(key).or_insert(0u64) += 1;
        }
        for key in 0..10u64 {
            assert_eq!(counts[&key], 51, "key {key} lost or duplicated items");
        }
        drop(q);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_count_reshard_is_a_compaction_pass() {
        let dir = temp_dir("compact");
        let orch = RecoveryOrchestrator::new(2);
        {
            let q: crate::ShardedQueue<OptUnlinkedQueue> = orch
                .create_dir(&dir, config(4, RoutePolicy::RoundRobin), file())
                .unwrap();
            for i in 1..=200u64 {
                q.enqueue(0, i);
            }
            for _ in 0..150 {
                q.dequeue(0).unwrap();
            }
        }
        let report = orch
            .reshard_dir::<OptUnlinkedQueue>(&dir, 4, QueueConfig::small_test())
            .unwrap();
        assert_eq!((report.from, report.to), (4, 4));
        assert_eq!(report.items_moved, 50, "only live items move");
        let (q, _, _) = orch
            .open_dir::<OptUnlinkedQueue>(&dir, QueueConfig::small_test())
            .unwrap();
        let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
        got.sort_unstable();
        assert_eq!(got, (151..=200).collect::<Vec<_>>());
        drop(q);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_intent_rolls_back_and_preserves_sources() {
        let dir = temp_dir("rollback");
        let orch = RecoveryOrchestrator::new(2);
        {
            let q: crate::ShardedQueue<OptUnlinkedQueue> = orch
                .create_dir(&dir, config(2, RoutePolicy::RoundRobin), file())
                .unwrap();
            for i in 1..=100u64 {
                q.enqueue(0, i);
            }
        }
        // Forge the crash state of a reshard killed mid-drain: intent
        // written, scratch + tmp + even a renamed destination exist, but
        // the manifest still names the sources.
        let intent = ReshardIntent {
            old_files: vec!["shard-00.pool".into(), "shard-01.pool".into()],
            new_files: vec!["shard-g1-00.pool".into(), "shard-g1-01.pool".into()],
        };
        intent.write(&dir).unwrap();
        fs::write(dir.join(scratch_name("shard-00.pool")), b"scratch").unwrap();
        fs::write(dir.join(tmp_name("shard-g1-00.pool")), b"half-built").unwrap();
        fs::write(dir.join("shard-g1-01.pool"), b"renamed-but-uncommitted").unwrap();

        let resolution = resolve_reshard(&dir).unwrap().unwrap();
        assert_eq!(resolution, ReshardResolution::RolledBack { from: 2, to: 2 });
        assert!(!ReshardIntent::exists(&dir));
        // Second resolution is a no-op.
        assert_eq!(resolve_reshard(&dir).unwrap(), None);

        // Only the manifest and the two source pools remain, items intact.
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec!["SHARDS.manifest", "shard-00.pool", "shard-01.pool"]
        );
        let (q, _, _) = orch
            .open_dir::<OptUnlinkedQueue>(&dir, QueueConfig::small_test())
            .unwrap();
        let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
        got.sort_unstable();
        assert_eq!(got, (1..=100).collect::<Vec<_>>());
        drop(q);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_intent_rolls_forward_and_sweeps_sources() {
        let dir = temp_dir("forward");
        let orch = RecoveryOrchestrator::new(2);
        {
            let q: crate::ShardedQueue<OptUnlinkedQueue> = orch
                .create_dir(&dir, config(2, RoutePolicy::RoundRobin), file())
                .unwrap();
            for i in 1..=100u64 {
                q.enqueue(0, i);
            }
        }
        // Run a real reshard, then forge the state of a crash that landed
        // between the manifest commit and the cleanup: stale sources and
        // scratch back on disk, intent still present.
        let old = ShardManifest::read(&dir).unwrap();
        orch.reshard_dir::<OptUnlinkedQueue>(&dir, 4, QueueConfig::small_test())
            .unwrap();
        let new = ShardManifest::read(&dir).unwrap();
        for f in &old.pool_files {
            fs::write(dir.join(f), b"stale source").unwrap();
            fs::write(dir.join(scratch_name(f)), b"stale scratch").unwrap();
        }
        ReshardIntent {
            old_files: old.pool_files.clone(),
            new_files: new.pool_files.clone(),
        }
        .write(&dir)
        .unwrap();

        let resolution = resolve_reshard(&dir).unwrap().unwrap();
        assert_eq!(
            resolution,
            ReshardResolution::RolledForward { from: 2, to: 4 }
        );
        assert!(resolution.summary().contains("forward"));
        for f in &old.pool_files {
            assert!(!dir.join(f).exists(), "stale source {f} must be swept");
        }
        let (q, _, manifest) = orch
            .open_dir::<OptUnlinkedQueue>(&dir, QueueConfig::small_test())
            .unwrap();
        assert_eq!(manifest.shards(), 4);
        let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
        got.sort_unstable();
        assert_eq!(got, (1..=100).collect::<Vec<_>>());
        drop(q);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_numbering_skips_over_every_live_generation() {
        assert_eq!(next_generation(&["shard-00.pool".into()]), 1);
        assert_eq!(
            next_generation(&["shard-g1-00.pool".into(), "shard-g1-01.pool".into()]),
            2
        );
        assert_eq!(next_generation(&["shard-g41-07.pool".into()]), 42);
        // Hand-written names that don't parse fall back to generation 1.
        assert_eq!(next_generation(&["custom.pool".into()]), 1);
    }
}
