//! Keyed-routing edge cases: per-key FIFO must hold even where the routing
//! degenerates — a single shard (every key collides on shard 0), distinct
//! keys whose hashes collide on one shard, and the "empty" key 0 (the
//! default key of callers that route everything together).
//!
//! Property-tested: arbitrary interleavings of keyed enqueues (driven by a
//! seeded mix) followed by a full drain must replay every key's sequence in
//! increasing order, with nothing lost, duplicated or invented.

use durable_queues::{DurableQueue, KeyedQueue, OptUnlinkedQueue, QueueConfig};
use pmem::PoolConfig;
use proptest::prelude::*;
use shard::{RoutePolicy, ShardConfig, ShardedQueue};
use std::collections::HashMap;

fn sharded(shards: usize) -> ShardedQueue<OptUnlinkedQueue> {
    ShardedQueue::create(ShardConfig {
        shards,
        queue: QueueConfig::small_test(),
        pool: PoolConfig::test_with_size(8 << 20),
        policy: RoutePolicy::KeyHash,
    })
}

fn encode(key: u64, seq: u64) -> u64 {
    (key << 32) | seq
}

fn decode(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xFFFF_FFFF)
}

/// Enqueues `per_key` items for every key in `keys`, interleaved in a
/// seeded round-robin-ish order, then drains the whole queue and checks the
/// per-key FIFO, no-loss and no-duplication conditions.
fn check_per_key_fifo(
    queue: &ShardedQueue<OptUnlinkedQueue>,
    keys: &[u64],
    per_key: u64,
    seed: u64,
) {
    let mut next_seq: HashMap<u64, u64> = keys.iter().map(|&k| (k, 1)).collect();
    let mut remaining: u64 = keys.len() as u64 * per_key;
    let mut state = seed | 1;
    while remaining > 0 {
        // SplitMix-ish step picks which key enqueues next.
        state = state
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let pick = (state >> 33) as usize % keys.len();
        // Skip keys that already emitted their quota.
        let key = (0..keys.len())
            .map(|i| keys[(pick + i) % keys.len()])
            .find(|k| next_seq[k] <= per_key)
            .unwrap();
        let seq = next_seq[&key];
        queue.enqueue_keyed(0, key, encode(key, seq));
        next_seq.insert(key, seq + 1);
        remaining -= 1;
    }

    let mut last_seq: HashMap<u64, u64> = HashMap::new();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    while let Some(v) = queue.dequeue(0) {
        let (key, seq) = decode(v);
        assert!(keys.contains(&key), "invented key {key}");
        if let Some(&prev) = last_seq.get(&key) {
            assert!(
                seq > prev,
                "per-key FIFO violated for key {key}: {seq} after {prev}"
            );
        }
        last_seq.insert(key, seq);
        *counts.entry(key).or_default() += 1;
    }
    for &key in keys {
        assert_eq!(
            counts.get(&key).copied().unwrap_or(0),
            per_key,
            "key {key} lost or duplicated items"
        );
    }
}

/// Two distinct keys whose hashes land on the same shard of `queue`; the
/// interesting collision case for per-key FIFO.
fn colliding_keys(queue: &ShardedQueue<OptUnlinkedQueue>) -> (u64, u64) {
    let first = 1u64;
    let shard = queue.shard_for_key(first);
    let second = (2..)
        .find(|&k| queue.shard_for_key(k) == shard)
        .expect("some key collides");
    (first, second)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shard count 1: every key degenerates onto the same shard, so even
    /// *global* FIFO must hold across arbitrary key mixes.
    #[test]
    fn single_shard_keeps_per_key_fifo(seed in 0u64..1_000_000, per_key in 5u64..40) {
        let queue = sharded(1);
        let keys = [0u64, 1, 7, 0xFFFF_FFFF];
        check_per_key_fifo(&queue, &keys, per_key, seed);
    }

    /// Keys that hash-collide onto one shard interleave on that shard
    /// without breaking either key's order.
    #[test]
    fn colliding_hash_keys_keep_per_key_fifo(seed in 0u64..1_000_000, per_key in 5u64..40) {
        let queue = sharded(8);
        let (a, b) = colliding_keys(&queue);
        prop_assert_eq!(queue.shard_for_key(a), queue.shard_for_key(b));
        check_per_key_fifo(&queue, &[a, b], per_key, seed);
    }

    /// The "empty" key 0 is an ordinary key: it routes deterministically
    /// and keeps FIFO order, also when mixed with non-empty keys.
    #[test]
    fn empty_key_routes_deterministically_and_keeps_fifo(seed in 0u64..1_000_000, per_key in 5u64..40) {
        let queue = sharded(4);
        let home = queue.shard_for_key(0);
        // Determinism: the empty key always lands on its home shard.
        for _ in 0..3 {
            prop_assert_eq!(queue.shard_for_key(0), home);
        }
        check_per_key_fifo(&queue, &[0, 3, 11], per_key, seed);
    }
}

/// Singleton edge cases that need no property sweep.
#[test]
fn keyed_routing_degenerate_cases() {
    // One shard, one key, one item.
    let queue = sharded(1);
    queue.enqueue_keyed(0, 0, 42);
    assert_eq!(queue.shard_for_key(0), 0);
    assert_eq!(queue.dequeue(0), Some(42));
    assert_eq!(queue.dequeue(0), None);

    // Keyed enqueues land on the key's shard even under a non-hash global
    // policy (the documented contract of `enqueue_keyed`).
    let rr = ShardedQueue::<OptUnlinkedQueue>::create(ShardConfig {
        shards: 4,
        queue: QueueConfig::small_test(),
        pool: PoolConfig::test_with_size(8 << 20),
        policy: RoutePolicy::RoundRobin,
    });
    for seq in 0..16u64 {
        rr.enqueue_keyed(0, 5, encode(5, seq));
    }
    let home = rr.shard_for_key(5);
    let on_home: Vec<u64> = std::iter::from_fn(|| rr.shard(home).dequeue(0)).collect();
    assert_eq!(on_home.len(), 16, "all items of key 5 live on its shard");
}
