//! Real process-restart recovery of a **4-shard directory**: a child
//! process creates a file-backed sharded queue through
//! `RecoveryOrchestrator::create_dir`, drives traffic, is SIGKILLed
//! mid-traffic, and the parent recovers the whole deployment from nothing
//! but the directory — manifest first, then every shard's pool file in
//! parallel — checking a linearizable suffix.
//!
//! Ack protocol and checks are the single-pool crash test's (see
//! `crates/store/tests/crash_restart.rs`), adapted to the sharded contract:
//! the global drain is not FIFO (shards are independent), but each shard's
//! residue must replay the single producer's sequence in increasing order.

use durable_queues::testkit::subprocess::{
    kill_and_reap, read_unique_acks, scratch_dir, wait_for_lines, AckLog, ChildProc,
};
use durable_queues::QueueConfig;
use durable_queues::{DurableMsQueue, DurableQueue, OptUnlinkedQueue, RecoverableQueue};
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardManifest};
use std::collections::BTreeSet;
use std::path::Path;
use std::time::Duration;
use store::FileConfig;

const ENV_DIR: &str = "SHARD_CRASH_CHILD_DIR";
const ENV_ALGO: &str = "SHARD_CRASH_CHILD_ALGO";
const SHARDS: usize = 4;

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 8,
        area_size: 512 * 1024,
    }
}

fn shard_config() -> ShardConfig {
    ShardConfig {
        shards: SHARDS,
        queue: queue_config(),
        pool: pmem::PoolConfig::test_with_size(32 << 20),
        policy: RoutePolicy::RoundRobin,
    }
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// Hidden child entry point (no-op unless the parent re-executes this test
/// binary with the env vars set).
#[test]
fn shard_crash_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let algo = std::env::var(ENV_ALGO).unwrap_or_else(|_| "durable_msq".into());
    let dir = Path::new(&dir);
    match algo.as_str() {
        "durable_msq" => run_child::<DurableMsQueue>(dir),
        "opt_unlinked" => run_child::<OptUnlinkedQueue>(dir),
        other => panic!("child: unknown algorithm {other}"),
    }
}

fn run_child<Q: RecoverableQueue>(dir: &Path) {
    let orch = RecoveryOrchestrator::new(SHARDS);
    let queue: shard::ShardedQueue<Q> = orch
        .create_dir(dir, shard_config(), FileConfig::with_size(32 << 20))
        .expect("child: create shard dir");
    let mut enq_log = AckLog::create(dir.join("enq.log"));
    let mut deq_log = AckLog::create(dir.join("deq.log"));
    std::thread::scope(|scope| {
        let q = &queue;
        scope.spawn(move || {
            for seq in 1..=2_000_000u64 {
                q.enqueue(0, seq);
                enq_log.record("E", seq);
            }
        });
        scope.spawn(move || loop {
            if let Some(v) = q.dequeue(1) {
                deq_log.record("D", v);
            }
        });
    });
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

fn crash_round<Q: RecoverableQueue>(algo: &str) {
    let dir = scratch_dir(&format!("shard-dir-crash-{algo}"));

    let mut child = ChildProc::new("shard_crash_child_entry")
        .env(ENV_DIR, &dir)
        .env(ENV_ALGO, algo)
        .spawn();
    wait_for_lines(
        &mut child,
        &dir.join("enq.log"),
        500,
        Duration::from_secs(60),
    );
    kill_and_reap(&mut child);

    // A fresh "process": recover the whole deployment from the directory.
    let orch = RecoveryOrchestrator::new(SHARDS);
    let (queue, report, manifest) = orch
        .open_dir::<Q>(&dir, queue_config())
        .expect("recover from directory");
    assert_eq!(manifest.shards(), SHARDS);
    assert_eq!(manifest.policy, RoutePolicy::RoundRobin);
    assert_eq!(report.per_shard.len(), SHARDS);
    assert_eq!(queue.shard_count(), SHARDS);

    let acked_e = read_unique_acks(&dir.join("enq.log"), "E");
    let acked_d = read_unique_acks(&dir.join("deq.log"), "D");

    // Drain shard by shard: stronger than a global drain, because each
    // shard's residue must replay the producer's sequence in order.
    let mut drained = Vec::new();
    for i in 0..SHARDS {
        let mut last = None;
        while let Some(v) = queue.shard(i).dequeue(0) {
            if let Some(prev) = last {
                assert!(v > prev, "shard {i}: FIFO violated ({v} after {prev})");
            }
            last = Some(v);
            drained.push(v);
        }
    }
    let r_set: BTreeSet<u64> = drained.iter().copied().collect();
    assert_eq!(r_set.len(), drained.len(), "duplicated item in the residue");

    let resurrected: Vec<u64> = r_set.intersection(&acked_d).copied().collect();
    assert!(
        resurrected.is_empty(),
        "resurrected dequeues: {resurrected:?}"
    );
    let missing: Vec<u64> = acked_e
        .iter()
        .filter(|v| !acked_d.contains(v) && !r_set.contains(v))
        .copied()
        .collect();
    assert!(missing.len() <= 1, "confirmed items lost: {missing:?}");
    let extras: Vec<u64> = r_set.difference(&acked_e).copied().collect();
    assert!(extras.len() <= 1, "unconfirmed extras: {extras:?}");

    eprintln!(
        "[{algo} x{SHARDS}] confirmed enqueues {}, confirmed dequeues {}, recovered {} ({})",
        acked_e.len(),
        acked_d.len(),
        drained.len(),
        report.summary()
    );
    assert!(acked_e.len() >= 500, "kill landed before real traffic");

    // The recovered sharded queue serves post-restart traffic.
    queue.enqueue(2, u64::MAX);
    assert_eq!(queue.dequeue(2), Some(u64::MAX));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_4_shard_durable_msq_recovers_via_manifest() {
    crash_round::<DurableMsQueue>("durable_msq");
}

#[test]
fn killed_4_shard_opt_unlinked_recovers_via_manifest() {
    crash_round::<OptUnlinkedQueue>("opt_unlinked");
}

/// Clean create → drop → reopen: the directory round-trips exactly, and the
/// manifest (not the caller) dictates shard count and policy.
#[test]
fn clean_dir_restart_recovers_exact_content() {
    let dir = std::env::temp_dir().join(format!("shard-dir-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let orch = RecoveryOrchestrator::new(SHARDS);
    {
        let queue: shard::ShardedQueue<DurableMsQueue> = orch
            .create_dir(
                &dir,
                shard_config().with_policy(RoutePolicy::KeyHash),
                FileConfig::with_size(16 << 20),
            )
            .unwrap();
        for i in 1..=2_000u64 {
            queue.enqueue(0, i);
        }
        for _ in 0..500 {
            queue.dequeue(0).unwrap();
        }
    }

    let (queue, report, manifest) = orch
        .open_dir::<DurableMsQueue>(&dir, queue_config())
        .unwrap();
    // The policy came from the manifest, not from any caller-side config.
    assert_eq!(manifest.policy, RoutePolicy::KeyHash);
    assert_eq!(queue.policy(), RoutePolicy::KeyHash);
    assert!(report.sequential_cost() >= report.critical_path());
    let mut rest: Vec<u64> = std::iter::from_fn(|| queue.dequeue(0)).collect();
    rest.sort_unstable();
    assert_eq!(rest, (501..=2_000).collect::<Vec<_>>());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A valid directory whose manifest was truncated (torn write) is refused
/// by `open_dir` with an error naming the file and the truncation — not an
/// opaque parse failure.
#[test]
fn open_dir_with_truncated_manifest_names_the_file_and_the_tear() {
    let dir = scratch_dir("shard-dir-truncated");
    let orch = RecoveryOrchestrator::new(2);
    drop(
        orch.create_dir::<DurableMsQueue>(
            &dir,
            ShardConfig {
                shards: 2,
                ..shard_config()
            },
            FileConfig::with_size(8 << 20),
        )
        .unwrap(),
    );
    let path = dir.join(shard::MANIFEST_FILE);
    let good = std::fs::read(&path).unwrap();
    std::fs::write(&path, &good[..good.len() - 6]).unwrap();

    let err = orch
        .open_dir::<DurableMsQueue>(&dir, queue_config())
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains(shard::MANIFEST_FILE), "{msg}");
    assert!(msg.contains("truncated"), "{msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A bit-flipped manifest is refused by `open_dir` with the expected and
/// found CRC values in the error.
#[test]
fn open_dir_with_crc_mismatched_manifest_reports_both_crcs() {
    let dir = scratch_dir("shard-dir-crcflip");
    let orch = RecoveryOrchestrator::new(2);
    drop(
        orch.create_dir::<DurableMsQueue>(
            &dir,
            ShardConfig {
                shards: 2,
                ..shard_config()
            },
            FileConfig::with_size(8 << 20),
        )
        .unwrap(),
    );
    let path = dir.join(shard::MANIFEST_FILE);
    let good = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, good.replace("policy", "Policy")).unwrap();

    let err = orch
        .open_dir::<DurableMsQueue>(&dir, queue_config())
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains(shard::MANIFEST_FILE), "{msg}");
    assert!(msg.contains("CRC mismatch"), "{msg}");
    assert!(msg.contains("expected") && msg.contains("found"), "{msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A directory without a manifest is refused with a useful error.
#[test]
fn open_dir_without_manifest_is_refused() {
    let dir = std::env::temp_dir().join(format!("shard-dir-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let err = RecoveryOrchestrator::new(2)
        .open_dir::<DurableMsQueue>(&dir, queue_config())
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    // Mention the manifest so the operator knows what is missing.
    let _ = ShardManifest::read(&dir).unwrap_err();
    std::fs::remove_dir_all(&dir).unwrap();
}
