//! Elastic-reshard correctness: property-tested split/merge over every
//! shard-count pair in {1,2,4,8} (both directions), and a subprocess
//! SIGKILL landing at unpredictable points inside `reshard_dir` followed
//! by `open_dir` recovery.
//!
//! Invariants checked after every reshard (and after every kill+recover):
//! nothing lost, nothing duplicated, and — under the key-hash policy —
//! per-key FIFO order intact, including for items enqueued *after* the
//! reshard (which must land behind their key's moved items).

use durable_queues::{DurableQueue, KeyedQueue, OptUnlinkedQueue, QueueConfig};
use proptest::prelude::*;
use shard::{resolve_reshard, RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use store::FileConfig;

const COUNTS: [usize; 4] = [1, 2, 4, 8];

fn queue_config() -> QueueConfig {
    QueueConfig::small_test()
}

fn shard_config(shards: usize, policy: RoutePolicy) -> ShardConfig {
    ShardConfig {
        shards,
        queue: queue_config(),
        pool: pmem::PoolConfig::test_with_size(4 << 20),
        policy,
    }
}

fn small_file() -> FileConfig {
    FileConfig::with_size(2 << 20)
}

fn encode(key: u64, seq: u64) -> u64 {
    (key << 32) | seq
}

fn decode(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xFFFF_FFFF)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reshard-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drains every shard of `queue` and checks the per-key FIFO, no-loss and
/// no-duplication conditions against `expected` (key -> highest seq).
fn check_drain(queue: &ShardedQueue<OptUnlinkedQueue>, expected: &HashMap<u64, u64>) {
    let mut last_seq: HashMap<u64, u64> = HashMap::new();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    while let Some(v) = queue.dequeue(0) {
        let (key, seq) = decode(v);
        assert!(expected.contains_key(&key), "invented key {key}");
        if let Some(&prev) = last_seq.get(&key) {
            assert!(
                seq > prev,
                "per-key FIFO violated for key {key}: {seq} after {prev}"
            );
        }
        last_seq.insert(key, seq);
        *counts.entry(key).or_default() += 1;
    }
    for (&key, &per_key) in expected {
        assert_eq!(
            counts.get(&key).copied().unwrap_or(0),
            per_key,
            "key {key} lost or duplicated items"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random item sets and keys survive a keyhash reshard N -> N'
    /// (both split and merge directions are drawn) with per-key FIFO
    /// intact, also for items enqueued after the reshard.
    #[test]
    fn keyhash_reshard_loses_nothing_and_keeps_per_key_fifo(
        from_idx in 0usize..4,
        to_idx in 0usize..4,
        key_count in 3u64..10,
        per_key in 5u64..30,
        seed in 0u64..1_000_000,
    ) {
        let (from, to) = (COUNTS[from_idx], COUNTS[to_idx]);
        let dir = temp_dir(&format!("prop-{from}-{to}-{seed}"));
        let orch = RecoveryOrchestrator::new(4);
        {
            let q: ShardedQueue<OptUnlinkedQueue> = orch
                .create_dir(&dir, shard_config(from, RoutePolicy::KeyHash), small_file())
                .unwrap();
            // Seeded interleaving across keys (SplitMix-ish picks).
            let mut next_seq: HashMap<u64, u64> = (0..key_count).map(|k| (k, 1)).collect();
            let mut state = seed | 1;
            let mut remaining = key_count * per_key;
            while remaining > 0 {
                state = state
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0xD1B5_4A32_D192_ED03);
                let pick = (state >> 33) % key_count;
                let key = (0..key_count)
                    .map(|i| (pick + i) % key_count)
                    .find(|k| next_seq[k] <= per_key)
                    .unwrap();
                let seq = next_seq[&key];
                q.enqueue_keyed(0, key, encode(key, seq));
                next_seq.insert(key, seq + 1);
                remaining -= 1;
            }
        }

        let report = orch
            .reshard_dir_with::<OptUnlinkedQueue>(&dir, to, queue_config(), None, |v| v >> 32)
            .unwrap();
        prop_assert_eq!(report.from, from);
        prop_assert_eq!(report.to, to);
        prop_assert_eq!(report.items_moved, key_count * per_key);

        let (q, _, manifest) = orch
            .open_dir::<OptUnlinkedQueue>(&dir, queue_config())
            .unwrap();
        prop_assert_eq!(manifest.shards(), to);
        // Post-reshard keyed traffic joins the moved items in order.
        for key in 0..key_count {
            q.enqueue_keyed(0, key, encode(key, per_key + 1));
        }
        let expected: HashMap<u64, u64> = (0..key_count).map(|k| (k, per_key + 1)).collect();
        check_drain(&q, &expected);
        drop(q);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Every (N, N') pair in {1,2,4,8}² — including N = N' compaction — under
/// round-robin routing: the item multiset is exactly preserved.
#[test]
fn every_count_pair_preserves_the_item_set_round_robin() {
    let orch = RecoveryOrchestrator::new(4);
    for from in COUNTS {
        for to in COUNTS {
            let dir = temp_dir(&format!("pairs-{from}-{to}"));
            {
                let q: ShardedQueue<OptUnlinkedQueue> = orch
                    .create_dir(
                        &dir,
                        shard_config(from, RoutePolicy::RoundRobin),
                        small_file(),
                    )
                    .unwrap();
                for i in 1..=120u64 {
                    q.enqueue(0, i);
                }
                // A few dequeues so the residue is not just "everything".
                for _ in 0..20 {
                    q.dequeue(0).unwrap();
                }
            }
            let report = orch
                .reshard_dir_with::<OptUnlinkedQueue>(
                    &dir,
                    to,
                    queue_config(),
                    Some(small_file()),
                    |v| v,
                )
                .unwrap();
            assert_eq!((report.from, report.to), (from, to));
            assert_eq!(report.items_moved, 100, "{from} -> {to}");

            let (q, _, manifest) = orch
                .open_dir::<OptUnlinkedQueue>(&dir, queue_config())
                .unwrap();
            assert_eq!(manifest.shards(), to, "{from} -> {to}");
            let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
            got.sort_unstable();
            assert_eq!(got, (21..=120).collect::<Vec<_>>(), "{from} -> {to}");
            drop(q);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// SIGKILL inside reshard_dir, then open_dir recovery
// ---------------------------------------------------------------------

const ENV_DIR: &str = "RESHARD_CRASH_CHILD_DIR";
const KEYS: u64 = 8;
const PER_KEY: u64 = 150;

/// Hidden child entry point (no-op unless the parent re-executes this test
/// binary with the env var set). Seeds a 4-shard keyhash directory once,
/// then reshards it in an endless 4 -> 2 -> 8 -> 4 cycle until killed.
#[test]
fn reshard_crash_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let dir = Path::new(&dir);
    let orch = RecoveryOrchestrator::new(4);
    if !dir.join(shard::MANIFEST_FILE).exists() {
        let q: ShardedQueue<OptUnlinkedQueue> = orch
            .create_dir(dir, shard_config(4, RoutePolicy::KeyHash), small_file())
            .expect("child: create dir");
        for seq in 1..=PER_KEY {
            for key in 0..KEYS {
                q.enqueue_keyed(0, key, encode(key, seq));
            }
        }
        drop(q); // orderly close before the reshard cycle begins
        std::fs::write(dir.join("seeded"), b"ok").expect("child: seeded marker");
    }
    let mut progress = std::fs::File::options()
        .create(true)
        .append(true)
        .open(dir.join("reshard.log"))
        .expect("child: progress log");
    for to in [2usize, 8, 4].into_iter().cycle() {
        let report = orch
            .reshard_dir_with::<OptUnlinkedQueue>(dir, to, queue_config(), None, |v| v >> 32)
            .expect("child: reshard");
        use std::io::Write;
        progress
            .write_all(format!("R {} {}\n", report.from, report.to).as_bytes())
            .expect("child: progress ack");
    }
}

/// One kill round: spawn the child, wait for `min_reshards` completed
/// reshards, sleep `jitter_ms` so the kill lands at an unpredictable point
/// inside the next reshard, SIGKILL, then recover from the directory and
/// check the full item set and per-key FIFO.
fn reshard_kill_round(round: usize, min_reshards: usize, jitter_ms: u64) {
    let dir = temp_dir(&format!("kill-{round}"));
    std::fs::create_dir_all(&dir).unwrap();

    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["reshard_crash_child_entry", "--exact", "--nocapture"])
        .env(ENV_DIR, &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child");
    let count_lines = |path: &Path| {
        std::fs::read(path)
            .map(|raw| raw.iter().filter(|&&b| b == b'\n').count())
            .unwrap_or(0)
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    while !dir.join("seeded").exists() || count_lines(&dir.join("reshard.log")) < min_reshards {
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("child exited prematurely ({status}) before resharding");
        }
        assert!(Instant::now() < deadline, "child made no reshard progress");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(jitter_ms));
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    // A fresh "process": resolve the interrupted reshard explicitly (so the
    // round can report which way it went), then recover and validate.
    let resolution = resolve_reshard(&dir).expect("resolve interrupted reshard");
    let orch = RecoveryOrchestrator::new(4);
    let (q, _, manifest) = orch
        .open_dir::<OptUnlinkedQueue>(&dir, queue_config())
        .expect("recover resharded directory");
    assert!(
        [2, 4, 8].contains(&manifest.shards()),
        "unexpected shard count {}",
        manifest.shards()
    );
    eprintln!(
        "[round {round}] killed after {} reshards (+{jitter_ms}ms): {} -> {} shards",
        count_lines(&dir.join("reshard.log")),
        resolution.map_or("no reshard in flight".to_string(), |r| r.summary()),
        manifest.shards(),
    );

    let expected: HashMap<u64, u64> = (0..KEYS).map(|k| (k, PER_KEY)).collect();
    check_drain(&q, &expected);
    // Exact set: every (key, seq) exactly once was already implied by
    // check_drain's per-key counts + FIFO; double-check as a set anyway.
    drop(q);
    let (q, _, _) = orch
        .open_dir::<OptUnlinkedQueue>(&dir, queue_config())
        .unwrap();
    let empty: BTreeSet<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
    assert!(empty.is_empty(), "drained directory must reopen empty");
    drop(q);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// SIGKILL at varied points inside `reshard_dir` (and occasionally between
/// reshards): the directory always recovers to a consistent pre- or
/// post-reshard state with the item set intact.
#[test]
fn sigkill_mid_reshard_recovers_to_a_consistent_state() {
    for (round, (min_reshards, jitter_ms)) in [(1usize, 0u64), (2, 3), (1, 7), (3, 11)]
        .into_iter()
        .enumerate()
    {
        reshard_kill_round(round, min_reshards, jitter_ms);
    }
}

/// One fault-injected round: the child aborts itself (no destructors, like
/// a kill -9) at the named crash point inside its first reshard (4 -> 2).
/// Returns the shard count `open_dir` recovered to, after validating the
/// item set.
fn reshard_abort_round(crash_env: &str) -> usize {
    let dir = temp_dir(&format!("abort-{}", crash_env.to_ascii_lowercase()));
    std::fs::create_dir_all(&dir).unwrap();
    let status = Command::new(std::env::current_exe().unwrap())
        .args(["reshard_crash_child_entry", "--exact", "--nocapture"])
        .env(ENV_DIR, &dir)
        .env(crash_env, "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run aborting child");
    assert!(!status.success(), "child must die at the crash point");
    assert!(dir.join("seeded").exists(), "child seeded before aborting");

    let resolution = resolve_reshard(&dir)
        .expect("resolve")
        .expect("an interrupted reshard must be pending");
    eprintln!("[{crash_env}] {}", resolution.summary());
    let orch = RecoveryOrchestrator::new(4);
    let (q, _, manifest) = orch
        .open_dir::<OptUnlinkedQueue>(&dir, queue_config())
        .expect("recover after abort");
    let expected: HashMap<u64, u64> = (0..KEYS).map(|k| (k, PER_KEY)).collect();
    check_drain(&q, &expected);
    drop(q);
    let shards = manifest.shards();
    std::fs::remove_dir_all(&dir).unwrap();
    shards
}

/// A crash right after the write-ahead intent lands must roll back: the
/// directory stays at the source shard count.
#[test]
fn abort_after_intent_rolls_back_to_the_source_count() {
    assert_eq!(reshard_abort_round("DQ_RESHARD_ABORT_AFTER_INTENT"), 4);
}

/// A crash right after the manifest commit must roll forward: the
/// directory comes back at the destination shard count even though the
/// crashed process never finished its cleanup.
#[test]
fn abort_after_commit_rolls_forward_to_the_destination_count() {
    assert_eq!(reshard_abort_round("DQ_RESHARD_ABORT_AFTER_COMMIT"), 2);
}
