//! Generic crash-recovery coverage: every `RecoverableQueue` in the
//! workspace composed through `ShardedQueue` at 1, 2 and 8 shards.
//!
//! Two layers of checking:
//!
//! 1. A property test (`proptest`) drives an arbitrary mix of keyed
//!    enqueues and dequeues to a quiescent point, crashes every shard
//!    coherently, recovers them in parallel, and asserts that the recovered
//!    content is *exactly* the set of undequeued items (no loss, no
//!    duplication, nothing invented) and that every shard replays each
//!    producer's items in FIFO order.
//! 2. A concurrent test crashes 8 shards mid-flight under real parallelism
//!    and checks the durable-linearizability conditions the single-queue
//!    test kit checks, adapted to per-shard FIFO.

use durable_queues::{
    DurableMsQueue, DurableQueue, IzraelevitzQueue, KeyedQueue, LinkedQueue, NvTraverseQueue,
    OptLinkedQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue, UnlinkedQueue,
};
use pmem::PoolConfig;
use proptest::prelude::*;
use ptm::{OneFileLiteQueue, RedoOptLiteQueue};
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

const PRODUCERS: usize = 3;

fn encode(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 40) | (seq + 1)
}

fn decode(value: u64) -> (usize, u64) {
    ((value >> 40) as usize, (value & 0xFF_FFFF_FFFF) - 1)
}

/// Drains `q` and checks that every producer's sequence numbers come out
/// strictly increasing (per-shard FIFO), returning the drained values.
fn drain_checking_fifo<Q: DurableQueue>(q: &Q, context: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut last_seq: HashMap<usize, u64> = HashMap::new();
    while let Some(v) = q.dequeue(0) {
        let (p, seq) = decode(v);
        if let Some(&prev) = last_seq.get(&p) {
            assert!(
                seq > prev,
                "{context}: producer {p} replayed seq {seq} after {prev}"
            );
        }
        last_seq.insert(p, seq);
        out.push(v);
    }
    out
}

/// The quiescent crash/recover property for one algorithm at one shard
/// count: run a deterministic op mix, crash all shards, recover in
/// parallel, compare against the model.
fn check_quiescent_crash_recovery<Q: RecoverableQueue + 'static>(
    shards: usize,
    policy: RoutePolicy,
    seed: u64,
    ops: u64,
) {
    let config = ShardConfig {
        shards,
        queue: QueueConfig::small_test(),
        pool: PoolConfig::test_with_size(8 << 20),
        policy,
    };
    let q = ShardedQueue::<Q>::create(config);

    let mut rng = seed | 1;
    let mut next_rand = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };
    let mut next_seq = [0u64; PRODUCERS];
    let mut enqueued: HashSet<u64> = HashSet::new();
    let mut dequeued: HashSet<u64> = HashSet::new();
    for _ in 0..ops {
        if next_rand() % 100 < 65 {
            let p = (next_rand() as usize) % PRODUCERS;
            let v = encode(p, next_seq[p]);
            next_seq[p] += 1;
            // Key by producer so key-hash routing pins each producer's
            // stream to one shard.
            q.enqueue_keyed(0, p as u64, v);
            enqueued.insert(v);
        } else if let Some(v) = q.dequeue(0) {
            assert!(
                dequeued.insert(v),
                "value {v:#x} dequeued twice before the crash"
            );
        }
    }

    let orchestrator = RecoveryOrchestrator::new(4);
    let images = orchestrator.crash(&q);
    let (recovered, report) = orchestrator.recover::<Q>(images, config);
    assert_eq!(report.per_shard.len(), shards);

    // Check per-shard FIFO shard by shard, then pool the values for the
    // exactness check.
    let mut survived: Vec<u64> = Vec::new();
    for i in 0..shards {
        survived.extend(drain_checking_fifo(
            recovered.shard(i),
            &format!("{} shard {i}/{shards}", recovered.name()),
        ));
    }
    let survived_set: HashSet<u64> = survived.iter().copied().collect();
    assert_eq!(
        survived_set.len(),
        survived.len(),
        "duplicate after recovery"
    );
    let expected: HashSet<u64> = enqueued.difference(&dequeued).copied().collect();
    assert_eq!(
        survived_set, expected,
        "recovered content diverges from the model (lost or invented items)"
    );
}

/// Every durable algorithm in the workspace, at every required shard count.
fn check_all_algorithms(seed: u64, ops: u64) {
    let policies = RoutePolicy::all();
    for (i, &shards) in [1usize, 2, 8].iter().enumerate() {
        let policy = policies[(seed as usize + i) % policies.len()];
        macro_rules! check {
            ($($Q:ty),+ $(,)?) => {
                $(check_quiescent_crash_recovery::<$Q>(shards, policy, seed, ops);)+
            };
        }
        check!(
            DurableMsQueue,
            IzraelevitzQueue,
            NvTraverseQueue,
            UnlinkedQueue,
            LinkedQueue,
            OptUnlinkedQueue,
            OptLinkedQueue,
            OneFileLiteQueue,
            RedoOptLiteQueue,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn every_recoverable_queue_survives_sharded_crashes(seed in 0u64..1_000_000, ops in 40u64..160) {
        check_all_algorithms(seed, ops);
    }
}

/// The acceptance-criteria scenario: 8 `OptUnlinkedQueue` shards crashed
/// mid-flight under concurrent traffic, recovered in parallel, with zero
/// lost and zero duplicated items.
#[test]
fn concurrent_crash_of_eight_shards_recovers_in_parallel() {
    const THREADS: usize = 4;
    const OPS: usize = 600;
    let config = ShardConfig {
        shards: 8,
        queue: QueueConfig::small_test().with_threads(THREADS),
        pool: PoolConfig::test_with_size(16 << 20),
        policy: RoutePolicy::RoundRobin,
    };
    let q = Arc::new(ShardedQueue::<OptUnlinkedQueue>::create(config));
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let crashed = Arc::new(AtomicBool::new(false));
    let logs = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let q = Arc::clone(&q);
        let barrier = Arc::clone(&barrier);
        let crashed = Arc::clone(&crashed);
        let logs = Arc::clone(&logs);
        handles.push(std::thread::spawn(move || {
            // (definite enqueues, maybe enqueues, definite dequeues, maybe dequeues)
            let mut log = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            barrier.wait();
            for seq in 0..OPS as u64 {
                if seq % 3 != 2 {
                    let v = encode(tid, seq);
                    q.enqueue(tid, v);
                    if crashed.load(Ordering::SeqCst) {
                        log.1.push(v);
                    } else {
                        log.0.push(v);
                    }
                } else if let Some(v) = q.dequeue(tid) {
                    if crashed.load(Ordering::SeqCst) {
                        log.3.push(v);
                    } else {
                        log.2.push(v);
                    }
                }
            }
            logs.lock().unwrap().push(log);
        }));
    }
    barrier.wait();
    std::thread::sleep(std::time::Duration::from_millis(5));
    let orchestrator = RecoveryOrchestrator::new(8);
    crashed.store(true, Ordering::SeqCst);
    let images = orchestrator.crash(&q);
    for h in handles {
        h.join().unwrap();
    }

    let (recovered, report) = orchestrator.recover::<OptUnlinkedQueue>(images, config);
    assert_eq!(report.per_shard.len(), 8);
    assert!(report.sequential_cost() >= report.critical_path());

    let logs = logs.lock().unwrap();
    let definite_enqueued: HashSet<u64> = logs.iter().flat_map(|l| l.0.iter().copied()).collect();
    let all_enqueued: HashSet<u64> = logs
        .iter()
        .flat_map(|l| l.0.iter().chain(l.1.iter()).copied())
        .collect();
    let definite_dequeued: HashSet<u64> = logs.iter().flat_map(|l| l.2.iter().copied()).collect();
    let all_dequeued: HashSet<u64> = logs
        .iter()
        .flat_map(|l| l.2.iter().chain(l.3.iter()).copied())
        .collect();

    let mut recovered_items = Vec::new();
    for i in 0..8 {
        recovered_items.extend(drain_checking_fifo(
            recovered.shard(i),
            "concurrent recovery",
        ));
    }
    let recovered_set: HashSet<u64> = recovered_items.iter().copied().collect();
    assert_eq!(
        recovered_set.len(),
        recovered_items.len(),
        "duplicated item after parallel recovery"
    );
    for v in &recovered_items {
        assert!(all_enqueued.contains(v), "invented item {v:#x}");
        assert!(
            !definite_dequeued.contains(v),
            "item {v:#x} dequeued before the crash reappeared"
        );
    }
    for v in &definite_enqueued {
        if !all_dequeued.contains(v) {
            assert!(
                recovered_set.contains(v),
                "completed enqueue {v:#x} was lost across the crash"
            );
        }
    }

    // The recovered sharded queue stays fully operational.
    recovered.enqueue(0, encode(63, 0));
    assert!(std::iter::from_fn(|| recovered.dequeue(0)).any(|v| v == encode(63, 0)));
}
