//! Multi-shard crash and parallel recovery, end to end.
//!
//! Eight `OptUnlinkedQueue` shards serve keyed traffic from four concurrent
//! producers while a consumer acknowledges a fixed share of the messages;
//! then the "machine" loses power across all shards at once. On restart the
//! recovery orchestrator rebuilds every shard in parallel and reports the
//! per-shard latencies, then the example validates that nothing acknowledged
//! reappeared, nothing published vanished, and per-key FIFO order survived.
//!
//! Run with:
//! ```text
//! cargo run -p shard --release --example multi_shard_recovery
//! ```

use durable_queues::{DurableQueue, KeyedQueue, OptUnlinkedQueue, QueueConfig};
use pmem::PoolConfig;
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const SHARDS: usize = 8;
const PRODUCERS: usize = 4;
const KEYS: u64 = 32;
const MESSAGES_PER_PRODUCER: u64 = 4_000;
/// The consumer acknowledges this many messages, then goes down — leaving a
/// deterministic backlog for the crash to land on.
const ACKNOWLEDGEMENTS: u64 = 3_000;

fn message(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 40) | seq
}

fn main() {
    let config = ShardConfig {
        shards: SHARDS,
        queue: QueueConfig {
            max_threads: PRODUCERS + 1,
            // Modest per-thread designated areas: every shard pool carries
            // areas for every thread, so the bench default (4 MiB) would
            // exhaust the per-shard pools.
            area_size: 1 << 20,
        },
        pool: PoolConfig::bench(32 << 20),
        policy: RoutePolicy::KeyHash,
    };
    let queue = Arc::new(ShardedQueue::<OptUnlinkedQueue>::create(config));
    println!(
        "sharded broker up: {} shards of {}, key-hash routing over {} keys",
        queue.shard_count(),
        queue.name(),
        KEYS
    );

    // Four producers publish concurrently; one consumer acknowledges a
    // fixed number of messages and then goes offline, so a backlog is
    // guaranteed to be outstanding when the power fails.
    let mut producer_handles = Vec::new();
    for p in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        producer_handles.push(std::thread::spawn(move || {
            for seq in 0..MESSAGES_PER_PRODUCER {
                // Stable key per (producer, key-slot): everything with one
                // key lands on one shard, in order.
                queue.enqueue_keyed(p, (p as u64) * KEYS + seq % KEYS, message(p, seq));
            }
        }));
    }
    let consumer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            let mut acknowledged = Vec::new();
            while (acknowledged.len() as u64) < ACKNOWLEDGEMENTS {
                match queue.dequeue(PRODUCERS) {
                    Some(msg) => acknowledged.push(msg),
                    None => std::thread::yield_now(),
                }
            }
            acknowledged
        })
    };
    for h in producer_handles {
        h.join().unwrap();
    }
    let acknowledged: HashSet<u64> = consumer.join().unwrap().into_iter().collect();
    let published: HashSet<u64> = (0..PRODUCERS)
        .flat_map(|p| (0..MESSAGES_PER_PRODUCER).map(move |seq| message(p, seq)))
        .collect();

    // Power failure: snapshot all eight shard pools as one campaign (the
    // fan-out itself runs on the orchestrator's thread pool).
    let orchestrator = RecoveryOrchestrator::new(SHARDS);
    let images = orchestrator.crash(&queue);
    println!(
        "before the crash: {} messages published, {} acknowledged, {} outstanding",
        published.len(),
        acknowledged.len(),
        published.len() - acknowledged.len()
    );

    // Restart: recover all eight shards in parallel.
    let (recovered, report) = orchestrator.recover::<OptUnlinkedQueue>(images, config);
    println!("{}", report.summary());
    for s in &report.per_shard {
        println!("  shard {}: recovered in {:?}", s.shard, s.latency);
    }

    // Redeliver everything that survived and validate the broker contract.
    let mut redelivered = Vec::new();
    while let Some(msg) = recovered.dequeue(0) {
        redelivered.push(msg);
    }
    let redelivered_set: HashSet<u64> = redelivered.iter().copied().collect();
    assert_eq!(
        redelivered_set.len(),
        redelivered.len(),
        "a message was duplicated across the crash"
    );
    for msg in &redelivered {
        assert!(
            !acknowledged.contains(msg),
            "acknowledged message {msg:#x} was redelivered"
        );
    }
    for msg in published.iter() {
        assert!(
            acknowledged.contains(msg) || redelivered_set.contains(msg),
            "published message {msg:#x} vanished across the crash"
        );
    }

    // Per-producer sequence order must be preserved within each key's
    // replay (keys pin a producer's stream segments to fixed shards).
    let mut last_seq: HashMap<(usize, u64), u64> = HashMap::new();
    for msg in &redelivered {
        let (p, seq) = ((msg >> 40) as usize, msg & 0xFF_FFFF_FFFF);
        let key = (p as u64) * KEYS + seq % KEYS;
        if let Some(&prev) = last_seq.get(&(p, key)) {
            assert!(prev < seq, "per-key FIFO order violated after recovery");
        }
        last_seq.insert((p, key), seq);
    }

    let stats = recovered.per_shard_stats();
    println!(
        "redelivered all {} unacknowledged messages; per-shard persist counts of the replay:",
        redelivered.len()
    );
    for (i, s) in stats.iter().enumerate() {
        println!("  shard {i}: fences={} flushes={}", s.fences, s.flushes);
    }
    println!("multi-shard crash recovery: OK");
}
