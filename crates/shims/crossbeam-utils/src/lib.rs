//! Offline shim for the `crossbeam-utils` crate.
//!
//! The build environment has no network access, so this in-tree crate
//! provides the (tiny) subset of `crossbeam-utils` the workspace uses:
//! [`CachePadded`]. The alignment matches the real crate on x86-64, where
//! the adjacent-line prefetcher makes 128 bytes the safe padding unit.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of two cache lines (128 bytes on
/// x86-64), preventing false sharing between adjacent per-thread slots.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns a value.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        let padded = CachePadded::new(7u64);
        assert_eq!(*padded, 7);
        assert_eq!(padded.into_inner(), 7);
    }
}
