//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so this in-tree crate
//! re-implements the subset of proptest the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map`, ranges, tuples,
//! [`strategy::Just`], unions ([`prop_oneof!`]), [`collection::vec`],
//! [`arbitrary::any`], the [`proptest!`] test macro and the
//! `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated values; it is
//!   not minimised.
//! * **Deterministic RNG.** Cases are generated from a fixed per-test seed
//!   (derived from the test's name), so CI failures always reproduce
//!   locally. Real proptest defaults to an OS seed plus a failure
//!   persistence file.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude`, mirroring the real crate's re-exports that this
/// workspace imports with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    /// Re-export under the name the real prelude uses.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Picks uniformly among several strategies producing the same value type.
///
/// Weighted variants (`weight => strategy`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property, returning a
/// [`test_runner::TestCaseError`] (rather than panicking) so the runner can
/// report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts that two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts that two expressions are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let case_seed = rng.fork();
                let mut case_rng = $crate::test_runner::TestRng::from_seed(case_seed);
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut case_rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        config.cases,
                        case_seed,
                        err
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
