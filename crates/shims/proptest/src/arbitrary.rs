//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::from_seed(11);
        let strategy = any::<u64>();
        let a = strategy.generate(&mut rng);
        let b = strategy.generate(&mut rng);
        assert_ne!(a, b);
    }
}
