//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Boxes a strategy so heterogeneous strategies of one value type can be
/// unioned (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<V> {
    variants: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `variants` is empty.
    pub fn new(variants: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.variants.len() as u64) as usize;
        self.variants[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.next_u64() as u128 % span) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                (start as u128).wrapping_add(rng.next_u64() as u128 % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..1000 {
            let v = (3..17usize).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25..0.75f64).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn union_covers_all_variants() {
        let mut rng = TestRng::from_seed(7);
        let union = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[union.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::from_seed(9);
        let strategy = (0..10u64, 0..10u64).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(strategy.generate(&mut rng) < 19);
        }
    }
}
