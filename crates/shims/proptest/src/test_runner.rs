//! Test-runner types: configuration, case errors and the deterministic RNG.

use std::fmt;

/// Configuration for a `proptest!` block (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Real proptest distinguishes rejected (filtered-out) cases; the shim
    /// treats them as failures since the workspace never filters.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand used by property helper functions.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A small, fast, deterministic RNG (splitmix64). Every property test seeds
/// one from its own name, so runs are reproducible across machines and CI.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(hash)
    }

    /// Seeds the RNG directly; the same seed replays the same case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Draws a seed for a sub-RNG (used to make each case independently
    /// replayable from the seed printed on failure).
    pub fn fork(&mut self) -> u64 {
        self.next_u64()
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_name_sensitive() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
