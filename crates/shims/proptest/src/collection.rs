//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_bounds() {
        let mut rng = TestRng::from_seed(3);
        let strategy = vec(0..100u64, 2..9);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
