//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so this in-tree crate
//! provides the subset of `parking_lot` the workspace uses: a [`Mutex`]
//! whose `lock()` returns the guard directly (no poisoning), backed by
//! `std::sync::Mutex`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// An RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic while holding the lock does not poison
    /// it — matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }
}
