//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access, so this in-tree crate
//! implements the subset of Criterion's API the `bench` crate uses:
//! benchmark groups with `sample_size` / `warm_up_time` / `measurement_time`
//! / `throughput`, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_custom`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Behavioural contract kept from real Criterion:
//!
//! * `--test` (what `cargo bench -- --test` passes) runs every benchmark
//!   exactly once and reports success/failure without timing — this is what
//!   the CI bench-smoke job relies on.
//! * A positional argument filters benchmarks by substring of their full id.
//! * Normal runs warm up, then time `sample_size` samples and report the
//!   mean per-iteration time (plus throughput when configured).
//!
//! Not kept: statistical analysis, HTML reports, baselines.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; one per bench binary.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    benchmarks_run: usize,
}

impl Criterion {
    /// Builds a driver from the process arguments. Recognises `--test`
    /// (run every benchmark once, no timing) and a positional substring
    /// filter; flags Criterion would accept (`--bench`, `--noplot`,
    /// `--save-baseline <name>`, ...) are ignored for compatibility with
    /// cargo's bench harness protocol.
    pub fn from_args() -> Self {
        let mut criterion = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => criterion.test_mode = true,
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                positional => criterion.filter = Some(positional.to_string()),
            }
        }
        criterion
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Prints the run summary; called by `criterion_main!` after all groups.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("criterion-shim: tested {} benchmarks", self.benchmarks_run);
        }
    }
}

/// How to scale per-iteration time into a rate in reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by [`BenchmarkGroup::bench_function`]: a plain string
/// or an explicit [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The full id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (each sample times a batch of
    /// iterations).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the throughput used to report a rate for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id());
        self.run(full_id, |bencher| routine(bencher));
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        self.run(full_id, |bencher| routine(bencher, input));
        self
    }

    /// Ends the group (kept for API compatibility; settings die with the
    /// group either way).
    pub fn finish(self) {}

    fn run(&mut self, full_id: String, mut routine: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        self.criterion.benchmarks_run += 1;
        if self.criterion.test_mode {
            print!("Testing {full_id} ... ");
            let mut bencher = Bencher {
                mode: BenchMode::Test,
                elapsed: Duration::ZERO,
                iters: 0,
            };
            routine(&mut bencher);
            println!("ok");
            return;
        }

        // Warm-up: run batches until the warm-up budget is spent, learning
        // the per-iteration cost from the accumulated totals (a single
        // iteration's timing is dominated by timer resolution).
        let warm_up_start = Instant::now();
        let mut warm_elapsed = Duration::ZERO;
        let mut warm_iters = 0u64;
        while warm_up_start.elapsed() < self.warm_up_time {
            let mut bencher = Bencher {
                mode: BenchMode::Measure(1),
                elapsed: Duration::ZERO,
                iters: 0,
            };
            routine(&mut bencher);
            warm_elapsed += bencher.elapsed;
            warm_iters += bencher.iters;
        }
        let per_iter_ns = if warm_iters == 0 {
            0
        } else {
            warm_elapsed.as_nanos() / warm_iters as u128
        };

        // Size each sample so all samples together fill measurement_time.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter_ns.max(1)).clamp(1, u64::MAX as u128) as u64;

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                mode: BenchMode::Measure(iters_per_sample),
                elapsed: Duration::ZERO,
                iters: 0,
            };
            routine(&mut bencher);
            if bencher.iters == 0 {
                continue;
            }
            let sample_per_iter = div_duration(bencher.elapsed, bencher.iters);
            best = best.min(sample_per_iter);
            total += bencher.elapsed;
            total_iters += bencher.iters;
        }
        if total_iters == 0 {
            println!("{full_id:<60} no samples");
            return;
        }
        let mean = div_duration(total, total_iters);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                format!("  thrpt: {:>12.0} elem/s", per_sec)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                format!("  thrpt: {:>12.0} B/s", per_sec)
            }
            None => String::new(),
        };
        println!("{full_id:<60} time: [{mean:>10.2?} mean, {best:>10.2?} best]{rate}");
    }
}

/// `Duration / u64` without `Duration`'s u32-truncating `Div` impl (which
/// would corrupt the mean — or panic — once an iteration count exceeds
/// `u32::MAX`).
fn div_duration(total: Duration, iters: u64) -> Duration {
    let nanos = total.as_nanos() / iters.max(1) as u128;
    Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
}

enum BenchMode {
    /// Run the routine exactly once per `iter` call (smoke test).
    Test,
    /// Run `n` iterations per `iter` call and accumulate elapsed time.
    Measure(u64),
}

/// Passed to benchmark routines; times the hot loop.
pub struct Bencher {
    mode: BenchMode,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it in batches sized by the harness.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            BenchMode::Test => {
                std::hint::black_box(routine());
                self.iters += 1;
            }
            BenchMode::Measure(n) => {
                let start = Instant::now();
                for _ in 0..n {
                    std::hint::black_box(routine());
                }
                self.elapsed += start.elapsed();
                self.iters += n;
            }
        }
    }

    /// Like [`Bencher::iter`] but the routine does its own timing: it
    /// receives an iteration count and returns the elapsed time for exactly
    /// that many iterations.
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        match self.mode {
            BenchMode::Test => {
                std::hint::black_box(routine(1));
                self.iters += 1;
            }
            BenchMode::Measure(n) => {
                self.elapsed += routine(n);
                self.iters += n;
            }
        }
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups under the shim driver.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Opaque value barrier re-exported for API compatibility.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut criterion = Criterion {
            filter: None,
            test_mode: true,
            benchmarks_run: 0,
        };
        let mut runs = 0u32;
        {
            let mut group = criterion.benchmark_group("g");
            group.bench_function("a", |b| b.iter(|| runs += 1));
            group.bench_function(BenchmarkId::new("f", 2), |b| {
                b.iter_custom(|iters| {
                    runs += iters as u32;
                    Duration::from_nanos(1)
                })
            });
            group.finish();
        }
        assert_eq!(runs, 2);
        assert_eq!(criterion.benchmarks_run, 2);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut criterion = Criterion {
            filter: Some("match-me".into()),
            test_mode: true,
            benchmarks_run: 0,
        };
        let mut runs = 0u32;
        {
            let mut group = criterion.benchmark_group("g");
            group.bench_function("match-me", |b| b.iter(|| runs += 1));
            group.bench_function("other", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn div_duration_survives_iteration_counts_beyond_u32() {
        let iters = u32::MAX as u64 * 8;
        let mean = div_duration(Duration::from_secs(40), iters);
        assert_eq!(mean, Duration::from_nanos(1));
        assert_eq!(
            div_duration(Duration::from_secs(1), 0),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn measurement_produces_samples() {
        let mut criterion = Criterion::default();
        {
            let mut group = criterion.benchmark_group("g");
            group
                .sample_size(3)
                .warm_up_time(Duration::from_millis(5))
                .measurement_time(Duration::from_millis(10));
            group.throughput(Throughput::Elements(1));
            group.bench_function("spin", |b| b.iter(|| std::hint::black_box(2u64.pow(10))));
            group.finish();
        }
        assert_eq!(criterion.benchmarks_run, 1);
    }
}
