//! Pool layout constants shared by every crate that stores data in the pool.
//!
//! The pool is divided into a handful of fixed regions so that a recovery
//! procedure, starting from nothing but the pool itself, can locate the
//! persistent roots of the data structures that live in it:
//!
//! ```text
//! offset 0                        reserved (PRef::NULL points here)
//! offset 64    .. 64 + 4096       queue root block   (QUEUE_ROOT)
//! offset 4160  .. 4160 + 4096     ssmem directory    (SSMEM_DIR)
//! offset HEAP_START ..            general heap, handed out by alloc_raw()
//! ```

/// Size of a cache line in bytes. All persistence is modelled at this
/// granularity, exactly as on the paper's Cascade Lake platform.
pub const CACHE_LINE: usize = 64;

/// Maximum number of threads that may operate on a single pool.
///
/// Per-thread persistent records (head indices, last-enqueue records,
/// node-to-retire slots) are sized by this constant, mirroring the fixed
/// `tid`-indexed arrays of the paper's implementation.
pub const MAX_THREADS: usize = 64;

/// Maximum number of consumer groups a single pool's exactly-once ack
/// cursor may address.
///
/// The cursor area (root slot 7) is laid out as `groups × MAX_THREADS`
/// 16-byte `(lease id, generation)` entries, one stripe of `MAX_THREADS`
/// entries per group; the group count rides the high half of the root
/// word (as `groups − 1`, so single-group pools keep the legacy bare
/// offset encoding). The cap bounds the area at
/// `MAX_GROUPS × MAX_THREADS × 16` = 64 KiB.
pub const MAX_GROUPS: usize = 64;

/// Byte offset of the queue root block. A queue stores its persistent global
/// state (or offsets leading to it) starting here, so that `recover()` can
/// find it after a crash without any volatile help.
pub const QUEUE_ROOT: u32 = CACHE_LINE as u32;

/// Size in bytes of the queue root block (64 cache lines).
pub const QUEUE_ROOT_LEN: u32 = 4096;

/// Byte offset of the ssmem allocator directory (the persistent list of
/// designated allocation areas).
pub const SSMEM_DIR: u32 = QUEUE_ROOT + QUEUE_ROOT_LEN;

/// Size in bytes of the ssmem allocator directory (room for ~500 designated
/// areas at one cache line per directory entry).
pub const SSMEM_DIR_LEN: u32 = 32768;

/// First byte offset handed out by [`crate::PmemPool::alloc_raw`].
pub const HEAP_START: u32 = SSMEM_DIR + SSMEM_DIR_LEN;

/// Rounds `n` up to the next multiple of `align` (which must be a power of
/// two).
#[inline]
pub const fn align_up(n: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

/// Returns the cache-line index containing byte offset `off`.
#[inline]
pub const fn line_of(off: u32) -> u32 {
    off / CACHE_LINE as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        const { assert!(QUEUE_ROOT as usize >= CACHE_LINE) };
        const { assert!(SSMEM_DIR >= QUEUE_ROOT + QUEUE_ROOT_LEN) };
        const { assert!(HEAP_START >= SSMEM_DIR + SSMEM_DIR_LEN) };
        assert_eq!(QUEUE_ROOT % CACHE_LINE as u32, 0);
        assert_eq!(SSMEM_DIR % CACHE_LINE as u32, 0);
        assert_eq!(HEAP_START % CACHE_LINE as u32, 0);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
        assert_eq!(align_up(100, 8), 104);
    }

    #[test]
    fn line_of_works() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_of(130), 2);
    }
}
