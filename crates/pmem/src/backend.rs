//! The pluggable pool-backend abstraction.
//!
//! [`crate::PmemPool`] fronts one of two kinds of storage:
//!
//! * the **simulated** backend (the default, [`crate::PoolConfig`]-driven):
//!   two in-DRAM images with explicit crash simulation, latency modelling and
//!   post-flush-access accounting — the substrate the paper's figures are
//!   regenerated on, and
//! * an **external** backend implementing [`PoolBackend`] — most importantly
//!   the `store` crate's memory-mapped, file-backed pool, whose contents
//!   survive a real process restart.
//!
//! The trait is the complete offset-addressed contract the queue algorithms
//! rely on: 64-bit atomic loads/stores/CAS/RMW, the flush → fence persistence
//! discipline (with per-thread fence scoping), non-temporal stores, watermark
//! management for raw allocation, and a handful of root slots a restart can
//! bootstrap from. Offsets are 32-bit byte offsets into the pool, exactly as
//! with the simulated pool; offset `0` is reserved as the null reference.
//!
//! Hot-path dispatch: the simulated backend is a dedicated enum arm inside
//! `PmemPool` (static dispatch, so the paper-facing benchmarks are
//! unaffected); external backends pay one virtual call per operation, which
//! is noise next to a real flush or `msync`.

use std::sync::atomic::AtomicU64;

/// Number of 64-bit root slots every backend provides.
///
/// Root slots are durable named words *outside* the offset-addressed pool
/// space; a process that reopens a pool can read them before anything else
/// has been recovered (e.g. to find a manifest, an epoch, or a format hint).
/// The queue algorithms themselves use the fixed
/// [`crate::layout::QUEUE_ROOT`] block instead.
pub const ROOT_SLOTS: usize = 8;

/// How a backend's [`sfence`](PoolBackend::sfence) turns a thread's pending
/// flushes into durable storage — advisory information for callers that
/// tune their fence cadence (batching enqueuers, the harness sweeps), not a
/// behavioural switch: the durability contract of `flush` + `sfence` is
/// identical under every hint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FenceHint {
    /// Every fencing thread submits its own write-back (the default, and
    /// the only mode simulated pools have: their fences are per-thread by
    /// construction).
    #[default]
    PerThread,
    /// Concurrent fences are coalesced: one leader submits a single
    /// batched write-back covering every waiter's pages, so N threads
    /// fencing together pay ~1 submission instead of N.
    GroupCommit {
        /// Extra nanoseconds a leader holds the batch open for stragglers
        /// (`0` = submit immediately; arrivals during the submission still
        /// coalesce into the next batch).
        window_ns: u64,
    },
}

/// Release half of the [`MapRef`] capability: a backend that hands out
/// pinned mapping views implements this so the view can drop its pin
/// without `MapRef` knowing anything about the backend's reclamation
/// scheme. The `token` round-trips opaquely from [`MapRef::new`].
pub trait MapPin: Sync {
    /// Releases the pin identified by `token`. Called exactly once, from
    /// [`MapRef::drop`].
    fn unpin_map(&self, token: usize);
}

/// A pinned, direct-pointer view of a backend's mapped pool space.
///
/// The queue hot path goes through [`PoolBackend`]'s per-word operations;
/// `MapRef` is the capability for callers that want to amortize even that
/// (bulk scans, checksumming, recovery walks): one pin up front, then raw
/// pointer arithmetic with zero per-access synchronization. The referenced
/// mapping is guaranteed valid for the life of the `MapRef` — an elastic
/// backend defers unmapping a replaced (grown) mapping until every
/// outstanding `MapRef` on it has dropped.
///
/// # Lifetime rules
///
/// * Offsets are pool offsets: `addr(0)` is pool offset 0, the backend's
///   header (if any) is not addressable through a `MapRef`.
/// * `len()` is the pool size *at pin time*. A concurrent growth may make
///   `PoolBackend::len` larger while this view is live; offsets handed out
///   by such an allocation may exceed this view's bounds, and this view's
///   accessors panic on them. Drop and re-pin to observe the grown
///   mapping. ([`PoolBackend`]'s own per-word operations are not so
///   limited: called under a held view, they re-resolve the current
///   mapping for offsets past the view's bounds.)
/// * A `MapRef` is `!Send`/`!Sync` (it carries a raw pointer and a
///   thread-slot pin); keep it on the thread that created it and drop it
///   promptly — on backends that pin (see [`is_pinned`](Self::is_pinned)),
///   a held `MapRef` delays reclamation of replaced mappings. On the
///   non-Unix fallback it blocks growth from *other* threads, and a growth
///   attempted by the holding thread itself (e.g. an allocation under the
///   view that exhausts the pool) fails with an error instead of
///   deadlocking.
/// * On a fixed-size pool (`grow_step == 0` for the `store` file pool) the
///   mapping can never move, so the view is unpinned: creating and
///   dropping it is free, and holding it constrains nothing.
pub struct MapRef<'p> {
    base: *mut u8,
    len: usize,
    pin: Option<(&'p dyn MapPin, usize)>,
}

impl<'p> MapRef<'p> {
    /// Builds a view over `len` bytes of pool space starting at `base`,
    /// optionally carrying a pin to release on drop.
    ///
    /// # Safety
    ///
    /// `base` must be valid for reads and writes of `len` bytes for the
    /// whole lifetime `'p`, or — when `pin` is `Some` — at least until the
    /// pin is released.
    pub unsafe fn new(base: *mut u8, len: usize, pin: Option<(&'p dyn MapPin, usize)>) -> Self {
        MapRef { base, len, pin }
    }

    /// Pool bytes addressable through this view (the pool size at pin
    /// time).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the view is empty (never, for real pools).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this view holds a reclamation pin. `false` on a direct-path
    /// (fixed-size) pool, where the mapping is immutable and the view costs
    /// nothing to hold.
    pub fn is_pinned(&self) -> bool {
        self.pin.is_some()
    }

    /// The mapped address of pool offset `off`, validated for an access
    /// of `len` bytes: panics unless the whole span `[off, off + len)`
    /// lies inside the view (`len` must be non-zero). Asserting only the
    /// first byte would let a multi-byte access starting near the tail
    /// run past the pinned mapping. Dereferencing is `unsafe` and subject
    /// to the pool's usual contract (concurrently-written words must be
    /// accessed atomically — see [`atomic_u64`](Self::atomic_u64)).
    #[inline]
    pub fn addr(&self, off: u32, len: usize) -> *mut u8 {
        assert!(
            len > 0
                && (off as usize)
                    .checked_add(len)
                    .is_some_and(|end| end <= self.len),
            "MapRef access span out of bounds"
        );
        // SAFETY: the whole span is in bounds of the pinned mapping.
        unsafe { self.base.add(off as usize) }
    }

    /// The word at pool offset `off` as an atomic, for lock-free access in
    /// place. Panics if `off` is out of bounds or unaligned.
    #[inline]
    pub fn atomic_u64(&self, off: u32) -> &AtomicU64 {
        assert!(
            off as usize + 8 <= self.len && off.is_multiple_of(8),
            "MapRef word out of bounds or unaligned"
        );
        // SAFETY: in bounds, 8-byte aligned (mappings are page aligned),
        // and AtomicU64 accesses are always valid on mapped pool words.
        unsafe { &*(self.base.add(off as usize) as *const AtomicU64) }
    }
}

impl Drop for MapRef<'_> {
    fn drop(&mut self) {
        if let Some((pin, token)) = self.pin.take() {
            pin.unpin_map(token);
        }
    }
}

/// The operations a persistent pool backend must provide.
///
/// All atomic operations carry the same ordering contract as the simulated
/// pool: loads are `Acquire`, stores `Release`, RMW ops `AcqRel`. The
/// persistence contract is: data reaches stable storage once it has been
/// covered by [`flush`](Self::flush) (or [`nt_store_u64`](Self::nt_store_u64))
/// followed by [`sfence`](Self::sfence) *on the issuing thread*.
///
/// The `tid`-taking methods follow the pool-wide single-owner discipline:
/// only the thread owning logical id `tid` may pass it.
pub trait PoolBackend: Send + Sync {
    /// Short identifier of the backend kind (`"file"`, `"sim"`, ...).
    fn kind(&self) -> &'static str;

    /// Pool size in bytes (the addressable offset space).
    fn len(&self) -> usize;

    /// Returns `true` if the pool has zero capacity.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// 64-bit atomic load (acquire).
    fn load_u64(&self, off: u32) -> u64;

    /// 64-bit atomic store (release). Durable only after flush + fence.
    fn store_u64(&self, off: u32, val: u64);

    /// 64-bit compare-and-swap; `Ok(previous)` on success, `Err(actual)` on
    /// failure.
    fn cas_u64(&self, off: u32, current: u64, new: u64) -> Result<u64, u64>;

    /// 64-bit atomic fetch-add; returns the previous value.
    fn fetch_add_u64(&self, off: u32, val: u64) -> u64;

    /// 64-bit atomic swap; returns the previous value.
    fn swap_u64(&self, off: u32, val: u64) -> u64;

    /// Issues an asynchronous flush of the cache line containing `off` on
    /// behalf of thread `tid` (CLWB/CLFLUSHOPT).
    fn flush(&self, tid: usize, off: u32);

    /// Flushes every cache line overlapping `[off, off + len)`.
    fn flush_range(&self, tid: usize, off: u32, len: u32) {
        if len == 0 {
            return;
        }
        let line = crate::layout::CACHE_LINE as u32;
        let first = crate::layout::line_of(off);
        let last = crate::layout::line_of(off + len - 1);
        for l in first..=last {
            self.flush(tid, l * line);
        }
    }

    /// Store fence: blocks until every flush and non-temporal store
    /// previously issued by thread `tid` is durable.
    fn sfence(&self, tid: usize);

    /// Non-temporal 64-bit store on behalf of thread `tid`: durable at the
    /// next fence without invalidating the containing cache line.
    fn nt_store_u64(&self, tid: usize, off: u32, val: u64);

    /// Immediately persists the line containing `off` (recovery/test path;
    /// no per-thread bookkeeping).
    fn persist_now(&self, off: u32);

    /// Clears any flushed/invalidated marker of the line containing `off`
    /// without charging a post-flush access. Meaningful for the simulated
    /// backend's accounting; real backends may ignore it.
    fn mark_line_cached(&self, off: u32) {
        let _ = off;
    }

    /// Zeroes `[off, off + len)` with plain stores (callers flush + fence if
    /// they need the zeroes durable).
    fn zero_range(&self, off: u32, len: u32);

    /// Current allocation watermark (first never-reserved byte offset).
    /// Backends with durable storage persist the watermark so a reopened
    /// pool never re-hands-out space that pre-crash data occupies.
    fn watermark(&self) -> u32;

    /// Compare-and-swap on the watermark; `Ok(previous)` on success,
    /// `Err(actual)` on failure. The allocation loop in
    /// [`crate::PmemPool::try_alloc_raw`] is built on this.
    fn cas_watermark(&self, current: u32, new: u32) -> Result<u32, u32>;

    /// Attempts to extend the pool so [`len`](Self::len) is at least
    /// `min_len` bytes, returning whether it is afterwards. The allocation
    /// loop calls this before giving up on an exhausted pool; a `true`
    /// return means "retry", not "this exact request was reserved" — the
    /// caller re-runs its watermark CAS against the larger pool.
    ///
    /// The default declines: backends are fixed-size unless they opt in
    /// (the `store` crate's file pool grows by `ftruncate` + remap when
    /// configured with a growth step). Implementations must be safe to call
    /// concurrently with every other pool operation and must only return
    /// `true` once the new capacity is crash-durably committed, so no
    /// allocation above the old ceiling can outlive a crash that forgets
    /// the growth.
    fn try_grow(&self, min_len: usize) -> bool {
        let _ = min_len;
        false
    }

    /// Number of capacity growths durably committed over the pool's
    /// lifetime (`0` for fixed-size backends).
    fn growth_epoch(&self) -> u32 {
        0
    }

    /// How this backend's `sfence` reaches stable storage (see
    /// [`FenceHint`]). Purely advisory — the flush + fence durability
    /// contract is the same under every answer. The default is the
    /// per-thread discipline every backend starts from; the `store` file
    /// pool reports [`FenceHint::GroupCommit`] when configured to coalesce
    /// concurrent power-fail fences into one batched `msync`.
    fn fence_hint(&self) -> FenceHint {
        FenceHint::default()
    }

    /// Hands out a pinned direct-pointer view of the pool space, or `None`
    /// for backends with no stable linear mapping to expose (the simulated
    /// backend keeps its persistence accounting honest by refusing).
    ///
    /// The returned view stays valid across concurrent growths: an elastic
    /// backend must not unmap a replaced mapping while any `MapRef` pinned
    /// on it is live. See [`MapRef`] for the lifetime rules.
    fn map_ref(&self) -> Option<MapRef<'_>> {
        None
    }

    /// Reads durable root slot `slot` (`< ROOT_SLOTS`).
    fn root_u64(&self, slot: usize) -> u64;

    /// Durably writes root slot `slot` (persisted before returning).
    fn set_root_u64(&self, slot: usize, val: u64);

    /// Reads the value of `off` that would survive a crash right now. For
    /// backends without a separate persistent image this is the current
    /// value.
    fn persistent_u64_at(&self, off: u32) -> u64 {
        self.load_u64(off)
    }

    /// Full durability barrier: everything written so far reaches stable
    /// storage (e.g. `msync` + `fsync` for a file backend). A no-op for
    /// backends whose fences are already globally durable.
    fn sync(&self) {}

    /// Records a clean/dirty marker in the backend's durable metadata, if it
    /// has any. `PmemPool` marks the pool dirty while open and clean on an
    /// orderly close; a reopened pool can report whether the previous
    /// session shut down cleanly.
    fn mark_clean(&self, clean: bool) {
        let _ = clean;
    }
}
