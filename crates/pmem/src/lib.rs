//! # pmem — simulated byte-addressable persistent memory
//!
//! This crate is the hardware-substitution substrate for the reproduction of
//! *"Durable Queues: The Second Amendment"* (Sela & Petrank, SPAA 2021).
//! The paper's measurements run on Intel Optane DC Persistent Memory behind a
//! Cascade Lake cache hierarchy; this crate models the events the paper
//! reasons about so that the queue algorithms can be implemented, tested for
//! durable linearizability, and benchmarked without the hardware:
//!
//! * a pool of cache-line-granular persistent memory with a **working image**
//!   (what loads and stores observe — "caches + memory") and a **persistent
//!   image** (what survives a crash — "NVRAM"),
//! * explicit persistence primitives: asynchronous [`PmemPool::flush`]
//!   (CLWB/CLFLUSHOPT), blocking [`PmemPool::sfence`] (SFENCE) and
//!   non-temporal stores [`PmemPool::nt_store_u64`] (`movnti`),
//! * the *cache-line invalidation* effect of flushes on current platforms:
//!   any load, store or CAS that touches a line previously flushed pays a
//!   configurable NVRAM read latency and is counted as a **post-flush
//!   access** — the quantity the paper's second amendment eliminates,
//! * Assumption 1 of the paper (stores to a single cache line become
//!   persistent in order, as a prefix): the simulator persists whole-line
//!   snapshots, never torn or reordered within a line,
//! * full-system crash simulation ([`PmemPool::simulate_crash`]) including an
//!   adversarial mode that persists additional, never-flushed lines to model
//!   implicit cache evictions,
//! * per-pool statistics ([`StatsSnapshot`]): flushes, fences, non-temporal
//!   stores, post-flush accesses, loads, stores and CASes.
//!
//! Persistent data is addressed by [`PRef`] — a 32-bit byte offset into the
//! pool — rather than by raw pointers, because a real pool may be mapped at a
//! different virtual address after a restart. Offset `0` is reserved and acts
//! as the null reference.
//!
//! The [`hw`] module additionally exposes the real x86-64 intrinsics
//! (`clflush`, `sfence`, `_mm_stream_si64`) used by the production path on
//! actual hardware, so the flush/fence cost microbenchmarks can be run
//! against DRAM-backed memory as well as against the simulator.
//!
//! The simulator is one of two backends behind the [`PoolBackend`]
//! abstraction ([`backend`]): [`PmemPool::from_backend`] accepts an external
//! implementation — the `store` crate's memory-mapped, file-backed pool —
//! so the same queue code runs on storage that survives a real process
//! restart. The simulated arm stays statically dispatched; see [`pool`].
//!
//! ## Example
//!
//! ```
//! use pmem::{PmemPool, PoolConfig};
//!
//! let pool = PmemPool::new(PoolConfig::small_test());
//! let off = pool.alloc_raw(64, 64);
//! pool.store_u64(off, 42);
//! pool.flush(0, off);
//! pool.sfence(0);
//!
//! // A crash preserves flushed data ...
//! let recovered = pool.simulate_crash();
//! assert_eq!(recovered.load_u64(off), 42);
//!
//! // ... but not data that was only written to the working image.
//! pool.store_u64(off, 43);
//! let recovered = pool.simulate_crash();
//! assert_eq!(recovered.load_u64(off), 42);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod hw;
pub mod latency;
pub mod layout;
pub mod pool;
pub mod pref;
pub(crate) mod sim;
pub mod stats;

pub use backend::{FenceHint, MapPin, MapRef, PoolBackend, ROOT_SLOTS};
pub use latency::LatencyModel;
pub use layout::{CACHE_LINE, MAX_GROUPS, MAX_THREADS};
pub use pool::{PmemPool, PoolConfig, PoolExhausted};
pub use pref::PRef;
pub use stats::StatsSnapshot;
