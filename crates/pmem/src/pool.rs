//! The persistent-memory pool front: one offset-addressed API over a
//! pluggable backend.
//!
//! A [`PmemPool`] is what every queue algorithm, the allocator and the
//! harness hold (`Arc<PmemPool>`). Internally it fronts one of two backends:
//!
//! * the **simulated** backend ([`PmemPool::new`]): the in-DRAM working- vs.
//!   persistent-image model with latency simulation, the eviction adversary
//!   and crash simulation — see the crate-private `sim` module for the
//!   model's docs. This arm is statically dispatched so the paper-facing
//!   measurements are unchanged by the abstraction.
//! * an **external** backend ([`PmemPool::from_backend`]) implementing
//!   [`PoolBackend`] — e.g. the `store` crate's memory-mapped, file-backed
//!   pool whose contents survive a real process restart. External backends
//!   pay one virtual call per operation, which is noise next to a real flush
//!   or `msync`.
//!
//! The persistence contract is identical for both: a store is durable once
//! the containing cache line has been covered by [`PmemPool::flush`] (or the
//! value by [`PmemPool::nt_store_u64`]) followed by [`PmemPool::sfence`] on
//! the issuing thread.

use crate::backend::{MapRef, PoolBackend, ROOT_SLOTS};
use crate::latency::LatencyModel;
use crate::layout::{self, CACHE_LINE};
use crate::sim::SimPool;
use crate::stats::{Stats, StatsSnapshot};
use std::fmt;

/// Configuration of a simulated pool (see [`PmemPool::new`]).
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Pool size in bytes. Rounded up to a whole number of cache lines.
    pub size: usize,
    /// Latency charged for persistence events.
    pub latency: LatencyModel,
    /// If `true` (the default), an explicit flush only reaches the persistent
    /// image once the issuing thread executes a fence — exactly the
    /// asynchronous-flush-plus-SFENCE discipline of the paper. If `false`,
    /// flushes persist immediately (a legal, stronger behaviour).
    pub deferred_persist: bool,
    /// Probability, per store/CAS, that the touched cache line is implicitly
    /// written back to the persistent image (a simulated cache eviction).
    /// `0.0` disables the adversary; crash tests sweep this.
    pub eviction_probability: f64,
    /// Seed for the implicit-eviction pseudo-random stream.
    pub eviction_seed: u64,
}

impl PoolConfig {
    /// A small, zero-latency pool for unit and property tests.
    pub fn small_test() -> Self {
        PoolConfig {
            size: 1 << 20,
            latency: LatencyModel::ZERO,
            deferred_persist: true,
            eviction_probability: 0.0,
            eviction_seed: 0x5EED,
        }
    }

    /// A zero-latency pool of the given size.
    pub fn test_with_size(size: usize) -> Self {
        PoolConfig {
            size,
            ..Self::small_test()
        }
    }

    /// A pool configured for benchmarking: Optane-like latencies.
    pub fn bench(size: usize) -> Self {
        PoolConfig {
            size,
            latency: LatencyModel::optane_like(),
            deferred_persist: true,
            eviction_probability: 0.0,
            eviction_seed: 0x5EED,
        }
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the implicit-eviction probability.
    pub fn with_evictions(mut self, probability: f64, seed: u64) -> Self {
        self.eviction_probability = probability;
        self.eviction_seed = seed;
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::small_test()
    }
}

/// Why a raw allocation could not be satisfied. Returned by
/// [`PmemPool::try_alloc_raw`]; [`PmemPool::alloc_raw`] panics with the same
/// details in the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Bytes the caller asked for.
    pub requested: u32,
    /// Alignment the caller asked for.
    pub align: u32,
    /// Watermark observed when the allocation failed (bytes already
    /// reserved, from the start of the pool).
    pub watermark: u32,
    /// Total pool capacity in bytes.
    pub capacity: usize,
}

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pmem pool exhausted: requested {} bytes (align {}) with watermark at {} of {} \
             capacity ({} bytes free)",
            self.requested,
            self.align,
            self.watermark,
            self.capacity,
            (self.capacity as u64).saturating_sub(self.watermark as u64),
        )
    }
}

impl std::error::Error for PoolExhausted {}

/// The backend a pool fronts. The sim arm is a concrete type so the
/// simulated hot path stays statically dispatched. Boxed because the sim
/// state (per-thread pending slots) is ~1.4 KiB — one indirection at
/// construction, none on the access paths (the box is matched once).
enum PoolImpl {
    Sim(Box<SimPool>),
    Ext(Box<dyn PoolBackend>),
}

/// The persistent-memory pool. See the [module docs](self).
pub struct PmemPool {
    inner: PoolImpl,
    /// Counters for external backends (the sim backend counts internally, as
    /// part of its access/latency model).
    ext_stats: Stats,
    config: PoolConfig,
}

impl PmemPool {
    /// Creates a fresh, zeroed **simulated** pool.
    pub fn new(config: PoolConfig) -> Self {
        let sim = SimPool::new(config);
        let config = PoolConfig {
            size: sim.len(),
            ..config
        };
        PmemPool {
            inner: PoolImpl::Sim(Box::new(sim)),
            ext_stats: Stats::default(),
            config,
        }
    }

    /// Wraps an external [`PoolBackend`] (e.g. a file-backed pool from the
    /// `store` crate). The synthesized [`PoolConfig`] reports the backend's
    /// size with zero simulated latency — external backends pay their real
    /// hardware costs instead.
    pub fn from_backend(backend: Box<dyn PoolBackend>) -> Self {
        let config = PoolConfig {
            size: backend.len(),
            latency: LatencyModel::ZERO,
            deferred_persist: true,
            eviction_probability: 0.0,
            eviction_seed: 0,
        };
        PmemPool {
            inner: PoolImpl::Ext(backend),
            ext_stats: Stats::default(),
            config,
        }
    }

    /// Pool size in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            PoolImpl::Sim(s) => s.len(),
            PoolImpl::Ext(b) => b.len(),
        }
    }

    /// Returns `true` if the pool has zero capacity (never the case).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configuration this pool was created with (synthesized for
    /// external backends).
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Short identifier of the backend kind: `"sim"` for simulated pools,
    /// the backend's own name (e.g. `"file"`) otherwise.
    pub fn backend_kind(&self) -> &'static str {
        match &self.inner {
            PoolImpl::Sim(_) => "sim",
            PoolImpl::Ext(b) => b.kind(),
        }
    }

    /// `true` if this pool runs on the simulated backend.
    pub fn is_sim(&self) -> bool {
        matches!(self.inner, PoolImpl::Sim(_))
    }

    /// Number of capacity growths durably committed over the pool's
    /// lifetime — `0` for the (always fixed-size) simulated backend and for
    /// external backends that never grew. See
    /// [`PoolBackend::growth_epoch`].
    pub fn growth_epoch(&self) -> u32 {
        match &self.inner {
            PoolImpl::Sim(_) => 0,
            PoolImpl::Ext(b) => b.growth_epoch(),
        }
    }

    /// How this pool's fences reach stable storage (see
    /// [`crate::FenceHint`]). The simulated backend answers statically —
    /// its fences are per-thread by construction, and the paper-facing
    /// numbers never pay a virtual call for the question; external
    /// backends report their configured discipline (the `store` file pool
    /// returns `GroupCommit` when coalescing is enabled).
    pub fn fence_hint(&self) -> crate::FenceHint {
        match &self.inner {
            PoolImpl::Sim(_) => crate::FenceHint::PerThread,
            PoolImpl::Ext(b) => b.fence_hint(),
        }
    }

    /// A pinned direct-pointer view of the pool space, or `None` when the
    /// backend has no stable linear mapping to expose.
    ///
    /// The simulated backend always refuses — letting callers bypass its
    /// per-access persistence accounting would silently falsify the
    /// paper-facing figures. The file backend returns a view that stays
    /// valid across concurrent growth; see [`MapRef`] for the lifetime
    /// rules and the `store` crate for the `grow_step == 0` zero-cost
    /// direct path.
    ///
    /// ```
    /// use pmem::{PmemPool, PoolConfig};
    ///
    /// let sim = PmemPool::new(PoolConfig::small_test());
    /// assert!(sim.map_ref().is_none(), "sim pools never expose raw memory");
    /// ```
    pub fn map_ref(&self) -> Option<MapRef<'_>> {
        match &self.inner {
            PoolImpl::Sim(_) => None,
            PoolImpl::Ext(b) => b.map_ref(),
        }
    }

    // ------------------------------------------------------------------
    // Loads / stores / CAS
    // ------------------------------------------------------------------

    /// Loads a 64-bit value from persistent memory (acquire ordering).
    #[inline]
    pub fn load_u64(&self, off: u32) -> u64 {
        match &self.inner {
            PoolImpl::Sim(s) => s.load_u64(off),
            PoolImpl::Ext(b) => {
                self.ext_stats.loads.fetch_add(1, RELAXED);
                b.load_u64(off)
            }
        }
    }

    /// Stores a 64-bit value to persistent memory (release ordering). The
    /// store survives a crash only once the containing line is flushed and
    /// fenced (or, on the simulated backend, implicitly evicted).
    #[inline]
    pub fn store_u64(&self, off: u32, val: u64) {
        match &self.inner {
            PoolImpl::Sim(s) => s.store_u64(off, val),
            PoolImpl::Ext(b) => {
                self.ext_stats.stores.fetch_add(1, RELAXED);
                b.store_u64(off, val)
            }
        }
    }

    /// Compare-and-swap on a 64-bit persistent word. Returns `Ok(current)` on
    /// success and `Err(actual)` on failure, like
    /// [`std::sync::atomic::AtomicU64::compare_exchange`].
    #[inline]
    pub fn cas_u64(&self, off: u32, current: u64, new: u64) -> Result<u64, u64> {
        match &self.inner {
            PoolImpl::Sim(s) => s.cas_u64(off, current, new),
            PoolImpl::Ext(b) => {
                self.ext_stats.cas_ops.fetch_add(1, RELAXED);
                b.cas_u64(off, current, new)
            }
        }
    }

    /// Atomic fetch-and-add on a 64-bit persistent word.
    #[inline]
    pub fn fetch_add_u64(&self, off: u32, val: u64) -> u64 {
        match &self.inner {
            PoolImpl::Sim(s) => s.fetch_add_u64(off, val),
            PoolImpl::Ext(b) => {
                self.ext_stats.cas_ops.fetch_add(1, RELAXED);
                b.fetch_add_u64(off, val)
            }
        }
    }

    /// Atomic swap on a 64-bit persistent word.
    #[inline]
    pub fn swap_u64(&self, off: u32, val: u64) -> u64 {
        match &self.inner {
            PoolImpl::Sim(s) => s.swap_u64(off, val),
            PoolImpl::Ext(b) => {
                self.ext_stats.cas_ops.fetch_add(1, RELAXED);
                b.swap_u64(off, val)
            }
        }
    }

    // ------------------------------------------------------------------
    // Persistence primitives
    // ------------------------------------------------------------------

    /// Issues an asynchronous flush (CLWB/CLFLUSHOPT) of the cache line
    /// containing `off`, on behalf of thread `tid`.
    ///
    /// The flushed content is durable once `tid` next executes
    /// [`sfence`](Self::sfence).
    #[inline]
    pub fn flush(&self, tid: usize, off: u32) {
        match &self.inner {
            PoolImpl::Sim(s) => s.flush(tid, off),
            PoolImpl::Ext(b) => {
                self.ext_stats.flushes.fetch_add(1, RELAXED);
                b.flush(tid, off)
            }
        }
    }

    /// Issues asynchronous flushes for every cache line overlapping
    /// `[off, off + len)`.
    pub fn flush_range(&self, tid: usize, off: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = layout::line_of(off);
        let last = layout::line_of(off + len - 1);
        for line in first..=last {
            self.flush(tid, line * CACHE_LINE as u32);
        }
    }

    /// Store fence (SFENCE): blocks until every flush and non-temporal store
    /// previously issued by thread `tid` is durable.
    pub fn sfence(&self, tid: usize) {
        match &self.inner {
            PoolImpl::Sim(s) => s.sfence(tid),
            PoolImpl::Ext(b) => {
                self.ext_stats.fences.fetch_add(1, RELAXED);
                b.sfence(tid)
            }
        }
    }

    /// Non-temporal 64-bit store (`movnti`): durable at `tid`'s next fence,
    /// without fetching or invalidating the containing cache line.
    #[inline]
    pub fn nt_store_u64(&self, tid: usize, off: u32, val: u64) {
        match &self.inner {
            PoolImpl::Sim(s) => s.nt_store_u64(tid, off, val),
            PoolImpl::Ext(b) => {
                self.ext_stats.nt_stores.fetch_add(1, RELAXED);
                b.nt_store_u64(tid, off, val)
            }
        }
    }

    /// Immediately persists the line containing `off`, bypassing the
    /// asynchronous-flush bookkeeping. Used by recovery code (which runs
    /// single-threaded before normal operation resumes) and by tests.
    pub fn persist_now(&self, off: u32) {
        match &self.inner {
            PoolImpl::Sim(s) => s.persist_now(off),
            PoolImpl::Ext(b) => {
                self.ext_stats.flushes.fetch_add(1, RELAXED);
                b.persist_now(off)
            }
        }
    }

    /// Clears the flushed/invalidated marker of the cache line containing
    /// `off` without charging a post-flush access.
    ///
    /// This models bringing a line into the cache as part of (re)allocating
    /// the object that lives on it: the paper's "access to flushed content"
    /// metric captures an algorithm re-reading data *it* persisted (head
    /// indices, node fields of live nodes), not the allocator handing the
    /// same slot to a fresh, unrelated object. The `ssmem` allocator calls
    /// this for every slot it returns so that all queue algorithms are
    /// accounted identically. External backends have no invalidation
    /// bookkeeping and ignore it.
    pub fn mark_line_cached(&self, off: u32) {
        match &self.inner {
            PoolImpl::Sim(s) => s.mark_line_cached(off),
            PoolImpl::Ext(b) => b.mark_line_cached(off),
        }
    }

    /// Zeroes `[off, off + len)` with plain stores (callers that need the
    /// zeroes to be durable must flush + fence afterwards, as ssmem does
    /// when it prepares a designated area).
    pub fn zero_range(&self, off: u32, len: u32) {
        match &self.inner {
            PoolImpl::Sim(s) => s.zero_range(off, len),
            PoolImpl::Ext(b) => {
                self.ext_stats.stores.fetch_add((len / 8) as u64, RELAXED);
                b.zero_range(off, len)
            }
        }
    }

    /// Full durability barrier: everything written so far reaches stable
    /// storage. A no-op for the simulated backend; `msync` + `fsync` for a
    /// file backend. Recovery-facing code calls it at checkpoints.
    pub fn sync(&self) {
        if let PoolImpl::Ext(b) = &self.inner {
            b.sync();
        }
    }

    /// Records a clean/dirty marker in the backend's durable metadata, if it
    /// has any (see [`PoolBackend::mark_clean`]).
    pub fn mark_clean(&self, clean: bool) {
        if let PoolImpl::Ext(b) = &self.inner {
            b.mark_clean(clean);
        }
    }

    // ------------------------------------------------------------------
    // Raw space management
    // ------------------------------------------------------------------

    /// Reserves `len` bytes of pool space aligned to `align` and returns its
    /// byte offset; panics with watermark/requested/capacity details if the
    /// pool is exhausted. This is a bump allocator; higher-level,
    /// crash-recoverable allocation (designated areas, free lists) is built
    /// on top of it by the `ssmem` crate, which records every reservation in
    /// its persistent directory. File-backed pools persist the watermark in
    /// the pool-file header, so a reopened pool continues where it left off.
    pub fn alloc_raw(&self, len: u32, align: u32) -> u32 {
        self.try_alloc_raw(len, align).unwrap_or_else(|e| {
            panic!("{e}");
        })
    }

    /// Like [`alloc_raw`](Self::alloc_raw), but reports pool exhaustion as a
    /// [`PoolExhausted`] error instead of panicking, so callers that can
    /// degrade (spill, shed load, grow elsewhere) get the diagnostics
    /// without unwinding.
    ///
    /// On an **external** backend that supports growth (e.g. a `store` file
    /// pool configured with a growth step), exhaustion first asks the
    /// backend to [`try_grow`](PoolBackend::try_grow) and retries, so an
    /// elastic pool only surfaces `PoolExhausted` once it truly cannot be
    /// extended any further. The **simulated** backend never grows: the
    /// paper-facing measurements run on a fixed, statically-dispatched pool.
    pub fn try_alloc_raw(&self, len: u32, align: u32) -> Result<u32, PoolExhausted> {
        assert!(align.is_power_of_two() && align >= 8);
        let exhausted = |watermark: u32| PoolExhausted {
            requested: len,
            align,
            watermark,
            capacity: self.len(),
        };
        let mut cur = self.watermark();
        loop {
            let start = layout::align_up(cur, align);
            let end = match start.checked_add(len) {
                Some(end) => end,
                None => return Err(exhausted(cur)),
            };
            if end as usize > self.len() {
                match &self.inner {
                    // try_grow(true) guarantees len() >= end afterwards, so
                    // the retry makes progress; false means the backend is
                    // fixed-size or at its ceiling, and the error stands.
                    PoolImpl::Ext(b) if b.try_grow(end as usize) => continue,
                    _ => return Err(exhausted(cur)),
                }
            }
            match self.cas_watermark(cur, end) {
                Ok(_) => return Ok(start),
                Err(actual) => cur = actual,
            }
        }
    }

    #[inline]
    fn cas_watermark(&self, current: u32, new: u32) -> Result<u32, u32> {
        match &self.inner {
            PoolImpl::Sim(s) => s.cas_watermark(current, new),
            PoolImpl::Ext(b) => b.cas_watermark(current, new),
        }
    }

    /// Current watermark (first never-reserved byte offset).
    pub fn watermark(&self) -> u32 {
        match &self.inner {
            PoolImpl::Sim(s) => s.watermark(),
            PoolImpl::Ext(b) => b.watermark(),
        }
    }

    /// Moves the watermark forward to at least `off`. Used by recovery to
    /// make sure re-created volatile bookkeeping does not hand out space that
    /// pre-crash data already occupies.
    pub fn set_watermark(&self, off: u32) {
        let mut cur = self.watermark();
        while cur < off {
            match self.cas_watermark(cur, off) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    // ------------------------------------------------------------------
    // Root slots
    // ------------------------------------------------------------------

    /// Reads durable root slot `slot` (`< `[`ROOT_SLOTS`]). Root slots are
    /// named 64-bit words a reopened pool can read before anything else has
    /// been recovered; they live outside the offset-addressed space.
    pub fn root_u64(&self, slot: usize) -> u64 {
        assert!(slot < ROOT_SLOTS, "root slot {slot} out of range");
        match &self.inner {
            PoolImpl::Sim(s) => s.root_u64(slot),
            PoolImpl::Ext(b) => b.root_u64(slot),
        }
    }

    /// Durably writes root slot `slot` (persisted before returning).
    pub fn set_root_u64(&self, slot: usize, val: u64) {
        assert!(slot < ROOT_SLOTS, "root slot {slot} out of range");
        match &self.inner {
            PoolImpl::Sim(s) => s.set_root_u64(slot, val),
            PoolImpl::Ext(b) => b.set_root_u64(slot, val),
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// A snapshot of the persistence counters.
    pub fn stats(&self) -> StatsSnapshot {
        match &self.inner {
            PoolImpl::Sim(s) => s.stats(),
            PoolImpl::Ext(_) => self.ext_stats.snapshot(),
        }
    }

    /// Resets all persistence counters to zero.
    pub fn reset_stats(&self) {
        match &self.inner {
            PoolImpl::Sim(s) => s.reset_stats(),
            PoolImpl::Ext(_) => self.ext_stats.reset(),
        }
    }

    // ------------------------------------------------------------------
    // Crash simulation (simulated backend only)
    // ------------------------------------------------------------------

    /// Reads a 64-bit value directly from the persistent image (what a crash
    /// right now would preserve). Intended for tests and debugging. On
    /// external backends this is the current value: their stores go straight
    /// to the (OS-cached) backing storage.
    pub fn persistent_u64_at(&self, off: u32) -> u64 {
        match &self.inner {
            PoolImpl::Sim(s) => s.persistent_u64_at(off),
            PoolImpl::Ext(b) => b.persistent_u64_at(off),
        }
    }

    /// Simulates a full-system crash followed by a restart: returns a new
    /// pool whose contents are exactly the persistent image of this one.
    ///
    /// The original pool is left untouched, so a test can crash the same
    /// execution repeatedly (e.g. at different adversary settings).
    ///
    /// # Panics
    /// On external (e.g. file-backed) backends, which are crashed for real —
    /// kill the process and reopen the pool file instead.
    pub fn simulate_crash(&self) -> PmemPool {
        self.simulate_crash_with_evictions(0.0, 0)
    }

    /// Simulates a crash in which, additionally, each cache line has
    /// independently been written back by an implicit eviction with the given
    /// probability before the power failed. This explores legal NVRAM states
    /// *beyond* what the algorithm explicitly persisted, which is exactly
    /// what a recovery procedure must tolerate.
    ///
    /// # Panics
    /// On external backends; see [`simulate_crash`](Self::simulate_crash).
    pub fn simulate_crash_with_evictions(&self, probability: f64, seed: u64) -> PmemPool {
        match &self.inner {
            PoolImpl::Sim(s) => {
                let sim = s.simulate_crash_with_evictions(probability, seed);
                PmemPool {
                    inner: PoolImpl::Sim(Box::new(sim)),
                    ext_stats: Stats::default(),
                    config: self.config,
                }
            }
            PoolImpl::Ext(b) => panic!(
                "simulate_crash is only available on the simulated backend; the '{}' backend \
                 is crashed for real (kill the process, then reopen the pool file)",
                b.kind()
            ),
        }
    }
}

const RELAXED: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HEAP_START;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_test())
    }

    #[test]
    fn fresh_pool_is_zeroed() {
        let p = pool();
        assert_eq!(p.load_u64(HEAP_START), 0);
        assert_eq!(p.persistent_u64_at(HEAP_START), 0);
    }

    #[test]
    fn alloc_raw_respects_alignment_and_watermark() {
        let p = pool();
        let a = p.alloc_raw(24, 8);
        let b = p.alloc_raw(64, 64);
        let c = p.alloc_raw(8, 8);
        assert!(a >= HEAP_START);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 24);
        assert!(c >= b + 64);
        assert!(p.watermark() >= c + 8);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_raw_panics_when_exhausted() {
        let p = PmemPool::new(PoolConfig::test_with_size(1 << 12));
        // The pool is padded to a minimum size; allocate more than it holds.
        for _ in 0..1024 {
            p.alloc_raw(4096, 64);
        }
    }

    #[test]
    fn alloc_raw_panic_message_carries_diagnostics() {
        let p = PmemPool::new(PoolConfig::test_with_size(1 << 12));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            p.alloc_raw(4096, 64);
        }))
        .expect_err("must exhaust");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("exhausted"), "{msg}");
        assert!(msg.contains("requested 4096 bytes"), "{msg}");
        assert!(msg.contains("watermark"), "{msg}");
        assert!(msg.contains("capacity"), "{msg}");
    }

    #[test]
    fn try_alloc_raw_reports_exhaustion_without_unwinding() {
        let p = PmemPool::new(PoolConfig::test_with_size(1 << 20));
        let cap = p.len();
        let mut allocated = 0u32;
        let err = loop {
            match p.try_alloc_raw(4096, 64) {
                Ok(_) => allocated += 1,
                Err(e) => break e,
            }
        };
        assert!(allocated >= 1, "a fresh pool satisfies at least one page");
        assert_eq!(err.requested, 4096);
        assert_eq!(err.align, 64);
        assert_eq!(err.capacity, cap);
        assert!(err.watermark as usize <= cap);
        assert!((err.watermark as usize) + 4096 > cap, "truly out of space");
        // The pool keeps working for smaller requests that still fit.
        let free = cap - err.watermark as usize;
        if free >= 72 {
            assert!(p.try_alloc_raw(8, 8).is_ok());
        }
        // The error formats with every diagnostic.
        let rendered = err.to_string();
        assert!(rendered.contains("watermark"), "{rendered}");
        assert!(rendered.contains("free"), "{rendered}");
    }

    #[test]
    fn try_alloc_raw_handles_offset_overflow() {
        let p = pool();
        let err = p.try_alloc_raw(u32::MAX, 8).expect_err("cannot fit");
        assert_eq!(err.requested, u32::MAX);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 0xABCD);
        assert_eq!(p.load_u64(off), 0xABCD);
    }

    #[test]
    fn unflushed_store_does_not_survive_a_crash() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 7);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 0);
    }

    #[test]
    fn flush_without_fence_does_not_persist_when_deferred() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 7);
        p.flush(0, off);
        assert_eq!(p.persistent_u64_at(off), 0);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 0);
    }

    #[test]
    fn flush_plus_fence_persists() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 7);
        p.flush(0, off);
        p.sfence(0);
        assert_eq!(p.persistent_u64_at(off), 7);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 7);
    }

    #[test]
    fn eager_persist_mode_persists_at_flush() {
        let mut cfg = PoolConfig::small_test();
        cfg.deferred_persist = false;
        let p = PmemPool::new(cfg);
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 9);
        p.flush(0, off);
        assert_eq!(p.persistent_u64_at(off), 9);
    }

    #[test]
    fn fence_only_persists_own_threads_flushes() {
        let p = pool();
        let a = p.alloc_raw(64, 64);
        let b = p.alloc_raw(64, 64);
        p.store_u64(a, 1);
        p.store_u64(b, 2);
        p.flush(0, a);
        p.flush(1, b);
        p.sfence(0);
        assert_eq!(p.persistent_u64_at(a), 1);
        assert_eq!(p.persistent_u64_at(b), 0);
        p.sfence(1);
        assert_eq!(p.persistent_u64_at(b), 2);
    }

    #[test]
    fn whole_line_is_persisted_prefix_semantics() {
        // Two fields on the same line, written in order; flushing via the
        // first field's address persists both (Assumption 1).
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 1);
        p.store_u64(off + 8, 2);
        p.flush(0, off);
        p.sfence(0);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 1);
        assert_eq!(r.load_u64(off + 8), 2);
    }

    #[test]
    fn flush_captures_content_at_fence_time() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 1);
        p.flush(0, off);
        p.store_u64(off, 2); // store between flush issue and fence
        p.sfence(0);
        // Either 1 or 2 would be legal on hardware; the simulator persists
        // the content at fence time.
        assert_eq!(p.persistent_u64_at(off), 2);
    }

    #[test]
    fn nt_store_persists_after_fence_without_invalidation() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.nt_store_u64(0, off, 42);
        assert_eq!(p.load_u64(off), 42);
        assert_eq!(p.persistent_u64_at(off), 0);
        p.sfence(0);
        assert_eq!(p.persistent_u64_at(off), 42);
        // No post-flush access was charged by any of this.
        assert_eq!(p.stats().post_flush_accesses, 0);
    }

    #[test]
    fn post_flush_access_is_counted_once_until_next_flush() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 5);
        p.flush(0, off);
        p.sfence(0);
        assert_eq!(p.stats().post_flush_accesses, 0);
        let _ = p.load_u64(off); // first access after the flush: counted
        let _ = p.load_u64(off); // line is cached again: not counted
        assert_eq!(p.stats().post_flush_accesses, 1);
        p.flush(0, off);
        p.store_u64(off, 6); // store after flush: counted too
        assert_eq!(p.stats().post_flush_accesses, 2);
    }

    #[test]
    fn accesses_to_other_lines_are_not_penalised() {
        let p = pool();
        let a = p.alloc_raw(64, 64);
        let b = p.alloc_raw(64, 64);
        p.store_u64(a, 1);
        p.flush(0, a);
        p.sfence(0);
        let _ = p.load_u64(b);
        assert_eq!(p.stats().post_flush_accesses, 0);
    }

    #[test]
    fn stats_count_all_event_kinds() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 1);
        let _ = p.load_u64(off);
        let _ = p.cas_u64(off, 1, 2);
        let _ = p.fetch_add_u64(off, 1);
        p.flush(0, off);
        p.sfence(0);
        p.nt_store_u64(0, off + 8, 3);
        let s = p.stats();
        assert_eq!(s.stores, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.cas_ops, 2);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.nt_stores, 1);
        p.reset_stats();
        assert_eq!(p.stats(), StatsSnapshot::default());
    }

    #[test]
    fn cas_success_and_failure() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 10);
        assert_eq!(p.cas_u64(off, 10, 11), Ok(10));
        assert_eq!(p.cas_u64(off, 10, 12), Err(11));
        assert_eq!(p.load_u64(off), 11);
    }

    #[test]
    fn swap_and_fetch_add() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        assert_eq!(p.fetch_add_u64(off, 5), 0);
        assert_eq!(p.swap_u64(off, 100), 5);
        assert_eq!(p.load_u64(off), 100);
    }

    #[test]
    fn implicit_evictions_persist_unflushed_data() {
        let cfg = PoolConfig::small_test().with_evictions(1.0, 1234);
        let p = PmemPool::new(cfg);
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 77);
        // With probability 1 every store's line is evicted, so the value is
        // already persistent without any flush.
        assert_eq!(p.persistent_u64_at(off), 77);
        assert!(p.stats().implicit_evictions >= 1);
    }

    #[test]
    fn crash_with_evictions_can_expose_working_content() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 31);
        let r_all = p.simulate_crash_with_evictions(1.0, 99);
        assert_eq!(r_all.load_u64(off), 31);
        let r_none = p.simulate_crash_with_evictions(0.0, 99);
        assert_eq!(r_none.load_u64(off), 0);
    }

    #[test]
    fn crash_preserves_watermark_and_config() {
        let p = pool();
        let off = p.alloc_raw(640, 64);
        let r = p.simulate_crash();
        assert!(r.watermark() >= off + 640);
        assert_eq!(r.config().size, p.config().size);
    }

    #[test]
    fn zero_range_clears_working_image() {
        let p = pool();
        let off = p.alloc_raw(128, 64);
        p.store_u64(off, 1);
        p.store_u64(off + 120, 2);
        p.zero_range(off, 128);
        assert_eq!(p.load_u64(off), 0);
        assert_eq!(p.load_u64(off + 120), 0);
    }

    #[test]
    fn flush_range_covers_every_line() {
        let p = pool();
        let off = p.alloc_raw(256, 64);
        for i in 0..32 {
            p.store_u64(off + i * 8, i as u64 + 1);
        }
        p.flush_range(0, off, 256);
        p.sfence(0);
        let r = p.simulate_crash();
        for i in 0..32 {
            assert_eq!(r.load_u64(off + i * 8), i as u64 + 1);
        }
    }

    #[test]
    fn persist_now_is_immediate() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 8);
        p.persist_now(off);
        assert_eq!(p.persistent_u64_at(off), 8);
    }

    #[test]
    fn watermark_never_moves_backwards() {
        let p = pool();
        let w = p.watermark();
        p.set_watermark(w.saturating_sub(100));
        assert_eq!(p.watermark(), w);
        p.set_watermark(w + 4096);
        assert_eq!(p.watermark(), w + 4096);
    }

    #[test]
    fn root_slots_survive_a_simulated_crash() {
        let p = pool();
        assert_eq!(p.root_u64(0), 0);
        p.set_root_u64(0, 0xDEAD);
        p.set_root_u64(7, 42);
        assert_eq!(p.root_u64(0), 0xDEAD);
        let r = p.simulate_crash();
        assert_eq!(r.root_u64(0), 0xDEAD);
        assert_eq!(r.root_u64(7), 42);
        assert_eq!(r.root_u64(3), 0);
    }

    #[test]
    #[should_panic(expected = "root slot")]
    fn out_of_range_root_slot_is_rejected() {
        pool().root_u64(ROOT_SLOTS);
    }

    #[test]
    fn sim_backend_identifies_itself_and_ignores_sync() {
        let p = pool();
        assert_eq!(p.backend_kind(), "sim");
        assert!(p.is_sim());
        p.sync(); // no-op on sim
        p.mark_clean(true); // no-op on sim
    }

    /// A minimal heap-backed external backend, exercising the `Ext` arm of
    /// every dispatch path (the real file backend lives in `crates/store`).
    struct HeapBackend {
        words: Box<[std::sync::atomic::AtomicU64]>,
        watermark: std::sync::atomic::AtomicU32,
        roots: [std::sync::atomic::AtomicU64; ROOT_SLOTS],
    }

    impl HeapBackend {
        fn new(size: usize) -> Self {
            HeapBackend {
                words: (0..size / 8)
                    .map(|_| std::sync::atomic::AtomicU64::new(0))
                    .collect(),
                watermark: std::sync::atomic::AtomicU32::new(HEAP_START),
                roots: Default::default(),
            }
        }
    }

    impl PoolBackend for HeapBackend {
        fn kind(&self) -> &'static str {
            "heap-test"
        }
        fn len(&self) -> usize {
            self.words.len() * 8
        }
        fn load_u64(&self, off: u32) -> u64 {
            self.words[off as usize / 8].load(std::sync::atomic::Ordering::Acquire)
        }
        fn store_u64(&self, off: u32, val: u64) {
            self.words[off as usize / 8].store(val, std::sync::atomic::Ordering::Release)
        }
        fn cas_u64(&self, off: u32, current: u64, new: u64) -> Result<u64, u64> {
            self.words[off as usize / 8].compare_exchange(
                current,
                new,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            )
        }
        fn fetch_add_u64(&self, off: u32, val: u64) -> u64 {
            self.words[off as usize / 8].fetch_add(val, std::sync::atomic::Ordering::AcqRel)
        }
        fn swap_u64(&self, off: u32, val: u64) -> u64 {
            self.words[off as usize / 8].swap(val, std::sync::atomic::Ordering::AcqRel)
        }
        fn flush(&self, _tid: usize, _off: u32) {}
        fn sfence(&self, _tid: usize) {}
        fn nt_store_u64(&self, _tid: usize, off: u32, val: u64) {
            self.store_u64(off, val)
        }
        fn persist_now(&self, _off: u32) {}
        fn zero_range(&self, off: u32, len: u32) {
            for i in 0..len / 8 {
                self.store_u64(off + i * 8, 0);
            }
        }
        fn watermark(&self) -> u32 {
            self.watermark.load(std::sync::atomic::Ordering::Acquire)
        }
        fn cas_watermark(&self, current: u32, new: u32) -> Result<u32, u32> {
            self.watermark.compare_exchange(
                current,
                new,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            )
        }
        fn root_u64(&self, slot: usize) -> u64 {
            self.roots[slot].load(std::sync::atomic::Ordering::Acquire)
        }
        fn set_root_u64(&self, slot: usize, val: u64) {
            self.roots[slot].store(val, std::sync::atomic::Ordering::Release)
        }
    }

    fn ext_pool() -> PmemPool {
        PmemPool::from_backend(Box::new(HeapBackend::new(1 << 20)))
    }

    #[test]
    fn external_backend_dispatches_and_counts() {
        let p = ext_pool();
        assert_eq!(p.backend_kind(), "heap-test");
        assert!(!p.is_sim());
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 5);
        assert_eq!(p.load_u64(off), 5);
        assert_eq!(p.cas_u64(off, 5, 6), Ok(5));
        assert_eq!(p.fetch_add_u64(off, 1), 6);
        assert_eq!(p.swap_u64(off, 9), 7);
        p.flush(0, off);
        p.sfence(0);
        p.nt_store_u64(0, off + 8, 3);
        p.zero_range(off, 64);
        p.persist_now(off);
        p.mark_line_cached(off);
        let s = p.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 9); // 1 store_u64 + 8 words of zero_range
        assert_eq!(s.cas_ops, 3);
        assert_eq!(s.fences, 1);
        assert_eq!(s.flushes, 2); // flush + persist_now
        assert_eq!(s.nt_stores, 1);
        p.reset_stats();
        assert_eq!(p.stats(), StatsSnapshot::default());
        // Root slots and watermark delegate too.
        p.set_root_u64(1, 11);
        assert_eq!(p.root_u64(1), 11);
        assert!(p.watermark() >= HEAP_START + 64);
    }

    #[test]
    fn external_backend_alloc_exhaustion_reports_details() {
        let p = ext_pool();
        let err = p.try_alloc_raw(u32::MAX, 8).expect_err("cannot fit");
        assert_eq!(err.capacity, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "simulate_crash is only available")]
    fn external_backend_rejects_simulated_crash() {
        let _ = ext_pool().simulate_crash();
    }
}
