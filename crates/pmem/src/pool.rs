//! The simulated persistent-memory pool.
//!
//! A [`PmemPool`] owns two images of the same address range:
//!
//! * the **working image** — what loads, stores and CASes observe. It plays
//!   the role of "the cache hierarchy plus whatever has already been written
//!   back": the most recent value of every location.
//! * the **persistent image** — what would survive a full-system crash. Only
//!   explicit persistence (flush + fence, or a non-temporal store + fence)
//!   and simulated implicit cache evictions copy data from the working image
//!   into the persistent image.
//!
//! All persistence is tracked at cache-line (64-byte) granularity, and a line
//! is always copied as a whole snapshot of its current working content. This
//! realises Assumption 1 of the paper: the persistent content of a line is a
//! prefix of the stores performed to it (here: always the full prefix up to
//! the copy), never a torn or reordered mixture.
//!
//! Flushes model the CLWB/CLFLUSHOPT behaviour the paper measured on Cascade
//! Lake: issuing a flush *invalidates* the line, so the next access to it
//! counts as a [post-flush access](crate::StatsSnapshot::post_flush_accesses)
//! and pays the configured NVRAM read latency.

use crate::latency::{spin_delay, LatencyModel};
use crate::layout::{self, CACHE_LINE, MAX_THREADS};
use crate::stats::{Stats, StatsSnapshot};
use crossbeam_utils::CachePadded;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Line state: present in the cache (normal access cost).
const LINE_CACHED: u8 = 0;
/// Line state: explicitly flushed, hence invalidated; the next access pays
/// the NVRAM read latency.
const LINE_FLUSHED: u8 = 1;

/// Configuration of a [`PmemPool`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Pool size in bytes. Rounded up to a whole number of cache lines.
    pub size: usize,
    /// Latency charged for persistence events.
    pub latency: LatencyModel,
    /// If `true` (the default), an explicit flush only reaches the persistent
    /// image once the issuing thread executes a fence — exactly the
    /// asynchronous-flush-plus-SFENCE discipline of the paper. If `false`,
    /// flushes persist immediately (a legal, stronger behaviour).
    pub deferred_persist: bool,
    /// Probability, per store/CAS, that the touched cache line is implicitly
    /// written back to the persistent image (a simulated cache eviction).
    /// `0.0` disables the adversary; crash tests sweep this.
    pub eviction_probability: f64,
    /// Seed for the implicit-eviction pseudo-random stream.
    pub eviction_seed: u64,
}

impl PoolConfig {
    /// A small, zero-latency pool for unit and property tests.
    pub fn small_test() -> Self {
        PoolConfig {
            size: 1 << 20,
            latency: LatencyModel::ZERO,
            deferred_persist: true,
            eviction_probability: 0.0,
            eviction_seed: 0x5EED,
        }
    }

    /// A zero-latency pool of the given size.
    pub fn test_with_size(size: usize) -> Self {
        PoolConfig {
            size,
            ..Self::small_test()
        }
    }

    /// A pool configured for benchmarking: Optane-like latencies.
    pub fn bench(size: usize) -> Self {
        PoolConfig {
            size,
            latency: LatencyModel::optane_like(),
            deferred_persist: true,
            eviction_probability: 0.0,
            eviction_seed: 0x5EED,
        }
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the implicit-eviction probability.
    pub fn with_evictions(mut self, probability: f64, seed: u64) -> Self {
        self.eviction_probability = probability;
        self.eviction_seed = seed;
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::small_test()
    }
}

/// A cache-line-aligned, zero-initialised raw memory arena.
struct RawArena {
    ptr: *mut u8,
    layout: Layout,
}

impl RawArena {
    fn new(size: usize) -> Self {
        let layout = Layout::from_size_align(size, CACHE_LINE).expect("invalid arena layout");
        // SAFETY: layout has non-zero size (callers guarantee size > 0).
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(
            !ptr.is_null(),
            "pmem arena allocation failed ({size} bytes)"
        );
        RawArena { ptr, layout }
    }
}

impl Drop for RawArena {
    fn drop(&mut self) {
        // SAFETY: `ptr` was allocated with exactly this layout in `new`.
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

// SAFETY: the arena is only ever accessed through atomic operations (see the
// accessors on `PmemPool`), so concurrent access from multiple threads cannot
// produce data races.
unsafe impl Send for RawArena {}
unsafe impl Sync for RawArena {}

/// Per-thread record of persistence work that has been issued but not yet
/// ordered by a fence: lines with outstanding asynchronous flushes, and the
/// (offset, value) pairs of outstanding non-temporal stores.
#[derive(Default)]
struct PendingPersists {
    flushed_lines: Vec<u32>,
    nt_writes: Vec<(u32, u64)>,
}

/// Interior-mutability wrapper for the per-thread pending-persist slots.
///
/// Only the thread that owns thread id `tid` may call
/// [`PmemPool::flush`]/[`PmemPool::sfence`]/[`PmemPool::nt_store_u64`] with
/// that `tid`; this single-owner discipline (identical to how the paper's
/// per-thread arrays are used) is what makes the unsynchronised interior
/// access sound.
struct PendingCell(UnsafeCell<PendingPersists>);

// SAFETY: each slot is only accessed by the single thread that owns the
// corresponding tid (documented contract of the persist API).
unsafe impl Sync for PendingCell {}

/// The simulated persistent-memory pool. See the [module docs](self).
pub struct PmemPool {
    working: RawArena,
    persistent: RawArena,
    line_states: Box<[AtomicU8]>,
    pending: Box<[CachePadded<PendingCell>]>,
    size: usize,
    watermark: AtomicU32,
    stats: Stats,
    config: PoolConfig,
    eviction_threshold: u64,
    rng: AtomicU64,
}

impl PmemPool {
    /// Creates a fresh, zeroed pool.
    pub fn new(config: PoolConfig) -> Self {
        assert!(
            config.size <= u32::MAX as usize,
            "pool size must be addressable by a 32-bit PRef"
        );
        let min = layout::HEAP_START as usize + CACHE_LINE;
        let size = layout::align_up(config.size.max(min) as u32, CACHE_LINE as u32) as usize;
        let lines = size / CACHE_LINE;
        let line_states = (0..lines).map(|_| AtomicU8::new(LINE_CACHED)).collect();
        let pending = (0..MAX_THREADS)
            .map(|_| CachePadded::new(PendingCell(UnsafeCell::new(PendingPersists::default()))))
            .collect();
        let eviction_threshold = probability_to_threshold(config.eviction_probability);
        PmemPool {
            working: RawArena::new(size),
            persistent: RawArena::new(size),
            line_states,
            pending,
            size,
            watermark: AtomicU32::new(layout::HEAP_START),
            stats: Stats::default(),
            config,
            eviction_threshold,
            rng: AtomicU64::new(config.eviction_seed | 1),
        }
    }

    /// Pool size in bytes.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` if the pool has zero capacity (never the case).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The configuration this pool was created with.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Address translation
    // ------------------------------------------------------------------

    #[inline]
    fn check_bounds(&self, off: u32, bytes: u32) {
        debug_assert!(
            off as usize + bytes as usize <= self.size,
            "pmem access out of bounds"
        );
        debug_assert_eq!(off % bytes, 0, "unaligned pmem access");
        debug_assert_eq!(
            (off as usize) / CACHE_LINE,
            (off as usize + bytes as usize - 1) / CACHE_LINE,
            "pmem access crosses a cache line"
        );
    }

    #[inline]
    fn working_u64(&self, off: u32) -> &AtomicU64 {
        self.check_bounds(off, 8);
        // SAFETY: in bounds, 8-byte aligned, and the arena lives as long as
        // `self`; the arena is only accessed through atomics.
        unsafe { &*(self.working.ptr.add(off as usize) as *const AtomicU64) }
    }

    #[inline]
    fn persistent_u64(&self, off: u32) -> &AtomicU64 {
        self.check_bounds(off, 8);
        // SAFETY: as above.
        unsafe { &*(self.persistent.ptr.add(off as usize) as *const AtomicU64) }
    }

    // ------------------------------------------------------------------
    // Instrumented access (the "did we touch a flushed line?" check)
    // ------------------------------------------------------------------

    /// Applies the post-flush-access accounting and penalty to the cache line
    /// containing `off`, then (re)marks it as cached.
    #[inline]
    fn touch(&self, off: u32) {
        let line = layout::line_of(off) as usize;
        let state = &self.line_states[line];
        if state.load(Ordering::Relaxed) == LINE_FLUSHED {
            state.store(LINE_CACHED, Ordering::Relaxed);
            self.stats
                .post_flush_accesses
                .fetch_add(1, Ordering::Relaxed);
            spin_delay(self.config.latency.nvram_read_ns);
        }
    }

    /// Possibly persists the line containing `off`, simulating an implicit
    /// cache eviction, when the adversary is enabled.
    #[inline]
    fn maybe_evict(&self, off: u32) {
        if self.eviction_threshold != 0 && self.next_rand() < self.eviction_threshold {
            self.persist_line(layout::line_of(off));
            self.stats
                .implicit_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn next_rand(&self) -> u64 {
        // SplitMix64 over a Weyl sequence; statistical quality is more than
        // enough for an eviction adversary and it is wait-free.
        let mut z = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    // ------------------------------------------------------------------
    // Loads / stores / CAS on the working image
    // ------------------------------------------------------------------

    /// Loads a 64-bit value from persistent memory (acquire ordering).
    #[inline]
    pub fn load_u64(&self, off: u32) -> u64 {
        self.touch(off);
        self.stats.loads.fetch_add(1, Ordering::Relaxed);
        self.working_u64(off).load(Ordering::Acquire)
    }

    /// Stores a 64-bit value to persistent memory (release ordering). The
    /// store reaches the working image only; it survives a crash only if the
    /// containing line is later flushed (or implicitly evicted).
    #[inline]
    pub fn store_u64(&self, off: u32, val: u64) {
        self.touch(off);
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        self.working_u64(off).store(val, Ordering::Release);
        self.maybe_evict(off);
    }

    /// Compare-and-swap on a 64-bit persistent word. Returns `Ok(current)` on
    /// success and `Err(actual)` on failure, like
    /// [`std::sync::atomic::AtomicU64::compare_exchange`].
    #[inline]
    pub fn cas_u64(&self, off: u32, current: u64, new: u64) -> Result<u64, u64> {
        self.touch(off);
        self.stats.cas_ops.fetch_add(1, Ordering::Relaxed);
        let r = self.working_u64(off).compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if r.is_ok() {
            self.maybe_evict(off);
        }
        r
    }

    /// Atomic fetch-and-add on a 64-bit persistent word.
    #[inline]
    pub fn fetch_add_u64(&self, off: u32, val: u64) -> u64 {
        self.touch(off);
        self.stats.cas_ops.fetch_add(1, Ordering::Relaxed);
        let r = self.working_u64(off).fetch_add(val, Ordering::AcqRel);
        self.maybe_evict(off);
        r
    }

    /// Atomic swap on a 64-bit persistent word.
    #[inline]
    pub fn swap_u64(&self, off: u32, val: u64) -> u64 {
        self.touch(off);
        self.stats.cas_ops.fetch_add(1, Ordering::Relaxed);
        let r = self.working_u64(off).swap(val, Ordering::AcqRel);
        self.maybe_evict(off);
        r
    }

    // ------------------------------------------------------------------
    // Persistence primitives
    // ------------------------------------------------------------------

    fn with_pending<R>(&self, tid: usize, f: impl FnOnce(&mut PendingPersists) -> R) -> R {
        assert!(tid < MAX_THREADS, "tid {tid} exceeds MAX_THREADS");
        // SAFETY: by the documented contract, only the owner of `tid` calls
        // the persist API with this tid, so there is no concurrent access.
        // The mutable borrow is confined to this call so it cannot be held
        // across another persist-API call for the same tid.
        f(unsafe { &mut *self.pending[tid].0.get() })
    }

    /// Copies the current working content of `line` into the persistent
    /// image. Whole-line, so Assumption 1 holds by construction.
    fn persist_line(&self, line: u32) {
        let base = line * CACHE_LINE as u32;
        for i in 0..(CACHE_LINE as u32 / 8) {
            let off = base + i * 8;
            let v = self.working_u64(off).load(Ordering::Acquire);
            self.persistent_u64(off).store(v, Ordering::Release);
        }
    }

    /// Issues an asynchronous flush (CLWB/CLFLUSHOPT) of the cache line
    /// containing `off`, on behalf of thread `tid`.
    ///
    /// The line is marked invalidated immediately (the Cascade Lake
    /// behaviour); its content reaches the persistent image when `tid` next
    /// executes [`sfence`](Self::sfence) (or immediately, if the pool was
    /// configured with `deferred_persist = false`).
    #[inline]
    pub fn flush(&self, tid: usize, off: u32) {
        debug_assert!((off as usize) < self.size);
        let line = layout::line_of(off);
        self.line_states[line as usize].store(LINE_FLUSHED, Ordering::Relaxed);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        if self.config.deferred_persist {
            self.with_pending(tid, |pending| pending.flushed_lines.push(line));
        } else {
            self.persist_line(line);
        }
        spin_delay(self.config.latency.flush_ns);
    }

    /// Issues asynchronous flushes for every cache line overlapping
    /// `[off, off + len)`.
    pub fn flush_range(&self, tid: usize, off: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = layout::line_of(off);
        let last = layout::line_of(off + len - 1);
        for line in first..=last {
            self.flush(tid, line * CACHE_LINE as u32);
        }
    }

    /// Store fence (SFENCE): blocks until every flush and non-temporal store
    /// previously issued by thread `tid` has reached the persistent image.
    pub fn sfence(&self, tid: usize) {
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        let (lines, nt) = self.with_pending(tid, |pending| {
            (
                std::mem::take(&mut pending.flushed_lines),
                std::mem::take(&mut pending.nt_writes),
            )
        });
        for line in lines {
            self.persist_line(line);
        }
        for (off, val) in nt {
            self.persistent_u64(off).store(val, Ordering::Release);
        }
        spin_delay(self.config.latency.fence_ns);
    }

    /// Non-temporal 64-bit store (`movnti`): writes the working image and
    /// schedules the value to reach the persistent image at the next fence,
    /// without fetching or invalidating the containing cache line.
    #[inline]
    pub fn nt_store_u64(&self, tid: usize, off: u32, val: u64) {
        self.stats.nt_stores.fetch_add(1, Ordering::Relaxed);
        self.working_u64(off).store(val, Ordering::Release);
        if self.config.deferred_persist {
            self.with_pending(tid, |pending| pending.nt_writes.push((off, val)));
        } else {
            self.persistent_u64(off).store(val, Ordering::Release);
        }
        spin_delay(self.config.latency.nt_store_ns);
    }

    /// Immediately persists the line containing `off`, bypassing the
    /// asynchronous-flush bookkeeping. Used by recovery code (which runs
    /// single-threaded before normal operation resumes) and by tests.
    pub fn persist_now(&self, off: u32) {
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let line = layout::line_of(off);
        self.line_states[line as usize].store(LINE_FLUSHED, Ordering::Relaxed);
        self.persist_line(line);
    }

    /// Clears the flushed/invalidated marker of the cache line containing
    /// `off` without charging a post-flush access.
    ///
    /// This models bringing a line into the cache as part of (re)allocating
    /// the object that lives on it: the paper's "access to flushed content"
    /// metric captures an algorithm re-reading data *it* persisted (head
    /// indices, node fields of live nodes), not the allocator handing the
    /// same slot to a fresh, unrelated object. The `ssmem` allocator calls
    /// this for every slot it returns so that all queue algorithms are
    /// accounted identically.
    pub fn mark_line_cached(&self, off: u32) {
        let line = layout::line_of(off) as usize;
        self.line_states[line].store(LINE_CACHED, Ordering::Relaxed);
    }

    /// Zeroes `[off, off + len)` in the working image (plain stores; callers
    /// that need the zeroes to be durable must flush + fence afterwards, as
    /// ssmem does when it prepares a designated area).
    pub fn zero_range(&self, off: u32, len: u32) {
        assert_eq!(off % 8, 0);
        assert_eq!(len % 8, 0);
        assert!(off as usize + len as usize <= self.size);
        for i in 0..(len / 8) {
            let o = off + i * 8;
            self.working_u64(o).store(0, Ordering::Release);
        }
        self.stats
            .stores
            .fetch_add((len / 8) as u64, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Raw space management
    // ------------------------------------------------------------------

    /// Reserves `len` bytes of pool space aligned to `align` and returns its
    /// byte offset. This is a volatile bump allocator; higher-level,
    /// crash-recoverable allocation (designated areas, free lists) is built
    /// on top of it by the `ssmem` crate, which records every reservation in
    /// its persistent directory.
    pub fn alloc_raw(&self, len: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two() && align >= 8);
        let mut cur = self.watermark.load(Ordering::Relaxed);
        loop {
            let start = layout::align_up(cur, align);
            let end = start
                .checked_add(len)
                .expect("pmem pool exhausted (offset overflow)");
            assert!(
                (end as usize) <= self.size,
                "pmem pool exhausted: need {} bytes at {}, pool size {}",
                len,
                start,
                self.size
            );
            match self.watermark.compare_exchange_weak(
                cur,
                end,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return start,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current watermark (first never-reserved byte offset).
    pub fn watermark(&self) -> u32 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Moves the watermark forward to at least `off`. Used by recovery to
    /// make sure re-created volatile bookkeeping does not hand out space that
    /// pre-crash data already occupies.
    pub fn set_watermark(&self, off: u32) {
        let mut cur = self.watermark.load(Ordering::Relaxed);
        while cur < off {
            match self.watermark.compare_exchange_weak(
                cur,
                off,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// A snapshot of the persistence counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets all persistence counters to zero.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    // ------------------------------------------------------------------
    // Crash simulation
    // ------------------------------------------------------------------

    /// Reads a 64-bit value directly from the persistent image (what a crash
    /// right now would preserve). Intended for tests and debugging.
    pub fn persistent_u64_at(&self, off: u32) -> u64 {
        self.persistent_u64(off).load(Ordering::Acquire)
    }

    /// Simulates a full-system crash followed by a restart: returns a new
    /// pool whose contents are exactly the persistent image of this one.
    ///
    /// The original pool is left untouched, so a test can crash the same
    /// execution repeatedly (e.g. at different adversary settings).
    pub fn simulate_crash(&self) -> PmemPool {
        self.simulate_crash_with_evictions(0.0, 0)
    }

    /// Simulates a crash in which, additionally, each cache line has
    /// independently been written back by an implicit eviction with the given
    /// probability before the power failed. This explores legal NVRAM states
    /// *beyond* what the algorithm explicitly persisted, which is exactly
    /// what a recovery procedure must tolerate.
    pub fn simulate_crash_with_evictions(&self, probability: f64, seed: u64) -> PmemPool {
        let recovered = PmemPool::new(self.config);
        recovered.set_watermark(self.watermark());
        let threshold = probability_to_threshold(probability);
        let mut rng_state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let lines = self.size / CACHE_LINE;
        for line in 0..lines as u32 {
            let evicted = threshold != 0 && next() < threshold;
            let base = line * CACHE_LINE as u32;
            for i in 0..(CACHE_LINE as u32 / 8) {
                let off = base + i * 8;
                let src = if evicted {
                    // The line was written back at crash time: its working
                    // content survives.
                    self.working_u64(off).load(Ordering::Acquire)
                } else {
                    self.persistent_u64(off).load(Ordering::Acquire)
                };
                recovered.working_u64(off).store(src, Ordering::Release);
                recovered.persistent_u64(off).store(src, Ordering::Release);
            }
        }
        recovered
    }
}

fn probability_to_threshold(probability: f64) -> u64 {
    if probability <= 0.0 {
        0
    } else if probability >= 1.0 {
        u64::MAX
    } else {
        (probability * u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HEAP_START;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_test())
    }

    #[test]
    fn fresh_pool_is_zeroed() {
        let p = pool();
        assert_eq!(p.load_u64(HEAP_START), 0);
        assert_eq!(p.persistent_u64_at(HEAP_START), 0);
    }

    #[test]
    fn alloc_raw_respects_alignment_and_watermark() {
        let p = pool();
        let a = p.alloc_raw(24, 8);
        let b = p.alloc_raw(64, 64);
        let c = p.alloc_raw(8, 8);
        assert!(a >= HEAP_START);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 24);
        assert!(c >= b + 64);
        assert!(p.watermark() >= c + 8);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_raw_panics_when_exhausted() {
        let p = PmemPool::new(PoolConfig::test_with_size(1 << 12));
        // The pool is padded to a minimum size; allocate more than it holds.
        for _ in 0..1024 {
            p.alloc_raw(4096, 64);
        }
    }

    #[test]
    fn store_then_load_roundtrip() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 0xABCD);
        assert_eq!(p.load_u64(off), 0xABCD);
    }

    #[test]
    fn unflushed_store_does_not_survive_a_crash() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 7);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 0);
    }

    #[test]
    fn flush_without_fence_does_not_persist_when_deferred() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 7);
        p.flush(0, off);
        assert_eq!(p.persistent_u64_at(off), 0);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 0);
    }

    #[test]
    fn flush_plus_fence_persists() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 7);
        p.flush(0, off);
        p.sfence(0);
        assert_eq!(p.persistent_u64_at(off), 7);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 7);
    }

    #[test]
    fn eager_persist_mode_persists_at_flush() {
        let mut cfg = PoolConfig::small_test();
        cfg.deferred_persist = false;
        let p = PmemPool::new(cfg);
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 9);
        p.flush(0, off);
        assert_eq!(p.persistent_u64_at(off), 9);
    }

    #[test]
    fn fence_only_persists_own_threads_flushes() {
        let p = pool();
        let a = p.alloc_raw(64, 64);
        let b = p.alloc_raw(64, 64);
        p.store_u64(a, 1);
        p.store_u64(b, 2);
        p.flush(0, a);
        p.flush(1, b);
        p.sfence(0);
        assert_eq!(p.persistent_u64_at(a), 1);
        assert_eq!(p.persistent_u64_at(b), 0);
        p.sfence(1);
        assert_eq!(p.persistent_u64_at(b), 2);
    }

    #[test]
    fn whole_line_is_persisted_prefix_semantics() {
        // Two fields on the same line, written in order; flushing via the
        // first field's address persists both (Assumption 1).
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 1);
        p.store_u64(off + 8, 2);
        p.flush(0, off);
        p.sfence(0);
        let r = p.simulate_crash();
        assert_eq!(r.load_u64(off), 1);
        assert_eq!(r.load_u64(off + 8), 2);
    }

    #[test]
    fn flush_captures_content_at_fence_time() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 1);
        p.flush(0, off);
        p.store_u64(off, 2); // store between flush issue and fence
        p.sfence(0);
        // Either 1 or 2 would be legal on hardware; the simulator persists
        // the content at fence time.
        assert_eq!(p.persistent_u64_at(off), 2);
    }

    #[test]
    fn nt_store_persists_after_fence_without_invalidation() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.nt_store_u64(0, off, 42);
        assert_eq!(p.load_u64(off), 42);
        assert_eq!(p.persistent_u64_at(off), 0);
        p.sfence(0);
        assert_eq!(p.persistent_u64_at(off), 42);
        // No post-flush access was charged by any of this.
        assert_eq!(p.stats().post_flush_accesses, 0);
    }

    #[test]
    fn post_flush_access_is_counted_once_until_next_flush() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 5);
        p.flush(0, off);
        p.sfence(0);
        assert_eq!(p.stats().post_flush_accesses, 0);
        let _ = p.load_u64(off); // first access after the flush: counted
        let _ = p.load_u64(off); // line is cached again: not counted
        assert_eq!(p.stats().post_flush_accesses, 1);
        p.flush(0, off);
        p.store_u64(off, 6); // store after flush: counted too
        assert_eq!(p.stats().post_flush_accesses, 2);
    }

    #[test]
    fn accesses_to_other_lines_are_not_penalised() {
        let p = pool();
        let a = p.alloc_raw(64, 64);
        let b = p.alloc_raw(64, 64);
        p.store_u64(a, 1);
        p.flush(0, a);
        p.sfence(0);
        let _ = p.load_u64(b);
        assert_eq!(p.stats().post_flush_accesses, 0);
    }

    #[test]
    fn stats_count_all_event_kinds() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 1);
        let _ = p.load_u64(off);
        let _ = p.cas_u64(off, 1, 2);
        let _ = p.fetch_add_u64(off, 1);
        p.flush(0, off);
        p.sfence(0);
        p.nt_store_u64(0, off + 8, 3);
        let s = p.stats();
        assert_eq!(s.stores, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.cas_ops, 2);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.nt_stores, 1);
        p.reset_stats();
        assert_eq!(p.stats(), StatsSnapshot::default());
    }

    #[test]
    fn cas_success_and_failure() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 10);
        assert_eq!(p.cas_u64(off, 10, 11), Ok(10));
        assert_eq!(p.cas_u64(off, 10, 12), Err(11));
        assert_eq!(p.load_u64(off), 11);
    }

    #[test]
    fn swap_and_fetch_add() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        assert_eq!(p.fetch_add_u64(off, 5), 0);
        assert_eq!(p.swap_u64(off, 100), 5);
        assert_eq!(p.load_u64(off), 100);
    }

    #[test]
    fn implicit_evictions_persist_unflushed_data() {
        let cfg = PoolConfig::small_test().with_evictions(1.0, 1234);
        let p = PmemPool::new(cfg);
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 77);
        // With probability 1 every store's line is evicted, so the value is
        // already persistent without any flush.
        assert_eq!(p.persistent_u64_at(off), 77);
        assert!(p.stats().implicit_evictions >= 1);
    }

    #[test]
    fn crash_with_evictions_can_expose_working_content() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 31);
        let r_all = p.simulate_crash_with_evictions(1.0, 99);
        assert_eq!(r_all.load_u64(off), 31);
        let r_none = p.simulate_crash_with_evictions(0.0, 99);
        assert_eq!(r_none.load_u64(off), 0);
    }

    #[test]
    fn crash_preserves_watermark_and_config() {
        let p = pool();
        let off = p.alloc_raw(640, 64);
        let r = p.simulate_crash();
        assert!(r.watermark() >= off + 640);
        assert_eq!(r.config().size, p.config().size);
    }

    #[test]
    fn zero_range_clears_working_image() {
        let p = pool();
        let off = p.alloc_raw(128, 64);
        p.store_u64(off, 1);
        p.store_u64(off + 120, 2);
        p.zero_range(off, 128);
        assert_eq!(p.load_u64(off), 0);
        assert_eq!(p.load_u64(off + 120), 0);
    }

    #[test]
    fn flush_range_covers_every_line() {
        let p = pool();
        let off = p.alloc_raw(256, 64);
        for i in 0..32 {
            p.store_u64(off + i * 8, i as u64 + 1);
        }
        p.flush_range(0, off, 256);
        p.sfence(0);
        let r = p.simulate_crash();
        for i in 0..32 {
            assert_eq!(r.load_u64(off + i * 8), i as u64 + 1);
        }
    }

    #[test]
    fn persist_now_is_immediate() {
        let p = pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 8);
        p.persist_now(off);
        assert_eq!(p.persistent_u64_at(off), 8);
    }

    #[test]
    fn watermark_never_moves_backwards() {
        let p = pool();
        let w = p.watermark();
        p.set_watermark(w.saturating_sub(100));
        assert_eq!(p.watermark(), w);
        p.set_watermark(w + 4096);
        assert_eq!(p.watermark(), w + 4096);
    }
}
