//! Persistence-event statistics.
//!
//! The paper argues about two per-operation quantities: the number of
//! blocking persist operations (fences) and the number of accesses to
//! previously flushed content. The pool counts both — plus flushes,
//! non-temporal stores and plain accesses — so that experiment E7/E8
//! (see DESIGN.md) can verify the analytic claims directly:
//! one fence per update operation for the four new queues, and zero
//! post-flush accesses for OptUnlinkedQ and OptLinkedQ.

use crossbeam_utils::CachePadded;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters, one cache line each to avoid false sharing on
/// the hot path.
#[derive(Default)]
pub(crate) struct Stats {
    pub flushes: CachePadded<AtomicU64>,
    pub fences: CachePadded<AtomicU64>,
    pub nt_stores: CachePadded<AtomicU64>,
    pub post_flush_accesses: CachePadded<AtomicU64>,
    pub loads: CachePadded<AtomicU64>,
    pub stores: CachePadded<AtomicU64>,
    pub cas_ops: CachePadded<AtomicU64>,
    pub implicit_evictions: CachePadded<AtomicU64>,
}

impl Stats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            nt_stores: self.nt_stores.load(Ordering::Relaxed),
            post_flush_accesses: self.post_flush_accesses.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            cas_ops: self.cas_ops.load(Ordering::Relaxed),
            implicit_evictions: self.implicit_evictions.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.nt_stores.store(0, Ordering::Relaxed);
        self.post_flush_accesses.store(0, Ordering::Relaxed);
        self.loads.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
        self.cas_ops.store(0, Ordering::Relaxed);
        self.implicit_evictions.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the pool's persistence counters.
///
/// Snapshots can be subtracted to obtain the events attributable to a region
/// of an experiment: `let delta = pool.stats() - before;`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Asynchronous cache-line flushes issued (CLWB/CLFLUSHOPT).
    pub flushes: u64,
    /// Blocking store fences issued (SFENCE).
    pub fences: u64,
    /// Non-temporal stores issued (`movnti`).
    pub nt_stores: u64,
    /// Loads/stores/CASes that touched a cache line previously invalidated by
    /// an explicit flush — the quantity the second amendment drives to zero.
    pub post_flush_accesses: u64,
    /// Plain persistent-memory loads.
    pub loads: u64,
    /// Plain persistent-memory stores.
    pub stores: u64,
    /// Compare-and-swap operations on persistent memory.
    pub cas_ops: u64,
    /// Cache lines persisted by the simulated implicit-eviction adversary.
    pub implicit_evictions: u64,
}

impl StatsSnapshot {
    /// Blocking persist operations (the quantity lower-bounded by Cohen et
    /// al.): one per fence.
    pub fn blocking_persists(&self) -> u64 {
        self.fences
    }

    /// Divides every counter by `ops`, yielding per-operation averages.
    pub fn per_op(&self, ops: u64) -> PerOpStats {
        let d = |v: u64| v as f64 / ops.max(1) as f64;
        PerOpStats {
            flushes: d(self.flushes),
            fences: d(self.fences),
            nt_stores: d(self.nt_stores),
            post_flush_accesses: d(self.post_flush_accesses),
        }
    }
}

impl Sub for StatsSnapshot {
    type Output = StatsSnapshot;
    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            flushes: self.flushes - rhs.flushes,
            fences: self.fences - rhs.fences,
            nt_stores: self.nt_stores - rhs.nt_stores,
            post_flush_accesses: self.post_flush_accesses - rhs.post_flush_accesses,
            loads: self.loads - rhs.loads,
            stores: self.stores - rhs.stores,
            cas_ops: self.cas_ops - rhs.cas_ops,
            implicit_evictions: self.implicit_evictions - rhs.implicit_evictions,
        }
    }
}

impl Add for StatsSnapshot {
    type Output = StatsSnapshot;
    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            flushes: self.flushes + rhs.flushes,
            fences: self.fences + rhs.fences,
            nt_stores: self.nt_stores + rhs.nt_stores,
            post_flush_accesses: self.post_flush_accesses + rhs.post_flush_accesses,
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
            cas_ops: self.cas_ops + rhs.cas_ops,
            implicit_evictions: self.implicit_evictions + rhs.implicit_evictions,
        }
    }
}

impl AddAssign for StatsSnapshot {
    fn add_assign(&mut self, rhs: StatsSnapshot) {
        *self = *self + rhs;
    }
}

/// Sums the counters of many pools — e.g. one snapshot per shard of a
/// sharded queue — into the aggregate the bench layer attributes costs from.
impl Sum for StatsSnapshot {
    fn sum<I: Iterator<Item = StatsSnapshot>>(iter: I) -> StatsSnapshot {
        iter.fold(StatsSnapshot::default(), |acc, s| acc + s)
    }
}

impl<'a> Sum<&'a StatsSnapshot> for StatsSnapshot {
    fn sum<I: Iterator<Item = &'a StatsSnapshot>>(iter: I) -> StatsSnapshot {
        iter.copied().sum()
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flushes={} fences={} nt_stores={} post_flush_accesses={} loads={} stores={} cas={} evictions={}",
            self.flushes,
            self.fences,
            self.nt_stores,
            self.post_flush_accesses,
            self.loads,
            self.stores,
            self.cas_ops,
            self.implicit_evictions
        )
    }
}

/// Per-operation averages of the persistence events that matter for the
/// paper's analysis (experiments E7/E8).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerOpStats {
    /// Average flushes per operation.
    pub flushes: f64,
    /// Average blocking fences per operation.
    pub fences: f64,
    /// Average non-temporal stores per operation.
    pub nt_stores: f64,
    /// Average post-flush accesses per operation.
    pub post_flush_accesses: f64,
}

impl fmt::Display for PerOpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fences/op={:.3} flushes/op={:.3} nt_stores/op={:.3} post_flush_accesses/op={:.3}",
            self.fences, self.flushes, self.nt_stores, self.post_flush_accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_subtraction() {
        let a = StatsSnapshot {
            flushes: 10,
            fences: 5,
            nt_stores: 2,
            post_flush_accesses: 7,
            loads: 100,
            stores: 50,
            cas_ops: 20,
            implicit_evictions: 1,
        };
        let b = StatsSnapshot {
            flushes: 4,
            fences: 2,
            nt_stores: 1,
            post_flush_accesses: 3,
            loads: 40,
            stores: 20,
            cas_ops: 10,
            implicit_evictions: 0,
        };
        let d = a - b;
        assert_eq!(d.flushes, 6);
        assert_eq!(d.fences, 3);
        assert_eq!(d.post_flush_accesses, 4);
        assert_eq!(d.blocking_persists(), 3);
    }

    #[test]
    fn snapshot_addition_and_sum() {
        let a = StatsSnapshot {
            flushes: 10,
            fences: 5,
            nt_stores: 2,
            post_flush_accesses: 7,
            loads: 100,
            stores: 50,
            cas_ops: 20,
            implicit_evictions: 1,
        };
        let b = StatsSnapshot {
            flushes: 4,
            fences: 2,
            nt_stores: 1,
            post_flush_accesses: 3,
            loads: 40,
            stores: 20,
            cas_ops: 10,
            implicit_evictions: 0,
        };
        let s = a + b;
        assert_eq!(s.flushes, 14);
        assert_eq!(s.fences, 7);
        assert_eq!(s.nt_stores, 3);
        assert_eq!(s.post_flush_accesses, 10);
        assert_eq!(s.loads, 140);
        assert_eq!(s.stores, 70);
        assert_eq!(s.cas_ops, 30);
        assert_eq!(s.implicit_evictions, 1);
        // Add/Sub are inverses.
        assert_eq!(s - b, a);

        let mut acc = StatsSnapshot::default();
        acc += a;
        acc += b;
        assert_eq!(acc, s);

        // Sum over owned and borrowed iterators (per-shard aggregation).
        let shards = [a, b, a];
        assert_eq!(shards.iter().sum::<StatsSnapshot>(), a + b + a);
        assert_eq!(shards.into_iter().sum::<StatsSnapshot>(), a + b + a);
        assert_eq!(
            std::iter::empty::<StatsSnapshot>().sum::<StatsSnapshot>(),
            StatsSnapshot::default()
        );
    }

    #[test]
    fn per_op_averages() {
        let s = StatsSnapshot {
            fences: 100,
            flushes: 200,
            ..Default::default()
        };
        let p = s.per_op(100);
        assert!((p.fences - 1.0).abs() < 1e-9);
        assert!((p.flushes - 2.0).abs() < 1e-9);
        // Guard against division by zero.
        let _ = s.per_op(0);
    }

    #[test]
    fn stats_reset_clears_counters() {
        let s = Stats::default();
        s.flushes.fetch_add(3, Ordering::Relaxed);
        s.fences.fetch_add(1, Ordering::Relaxed);
        assert_eq!(s.snapshot().flushes, 3);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn display_formats() {
        let s = StatsSnapshot::default();
        assert!(format!("{s}").contains("fences=0"));
        assert!(format!("{}", s.per_op(1)).contains("fences/op"));
    }
}
