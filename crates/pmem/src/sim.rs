//! The simulated persistent-memory backend.
//!
//! A [`SimPool`] owns two images of the same address range:
//!
//! * the **working image** — what loads, stores and CASes observe. It plays
//!   the role of "the cache hierarchy plus whatever has already been written
//!   back": the most recent value of every location.
//! * the **persistent image** — what would survive a full-system crash. Only
//!   explicit persistence (flush + fence, or a non-temporal store + fence)
//!   and simulated implicit cache evictions copy data from the working image
//!   into the persistent image.
//!
//! All persistence is tracked at cache-line (64-byte) granularity, and a line
//! is always copied as a whole snapshot of its current working content. This
//! realises Assumption 1 of the paper: the persistent content of a line is a
//! prefix of the stores performed to it (here: always the full prefix up to
//! the copy), never a torn or reordered mixture.
//!
//! Flushes model the CLWB/CLFLUSHOPT behaviour the paper measured on Cascade
//! Lake: issuing a flush *invalidates* the line, so the next access to it
//! counts as a [post-flush access](crate::StatsSnapshot::post_flush_accesses)
//! and pays the configured NVRAM read latency.
//!
//! This module is the "sim" arm of [`crate::PmemPool`]; the public API and
//! its documentation live there.

use crate::backend::ROOT_SLOTS;
use crate::latency::spin_delay;
use crate::layout::{self, CACHE_LINE, MAX_THREADS};
use crate::pool::PoolConfig;
use crate::stats::{Stats, StatsSnapshot};
use crossbeam_utils::CachePadded;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Line state: present in the cache (normal access cost).
const LINE_CACHED: u8 = 0;
/// Line state: explicitly flushed, hence invalidated; the next access pays
/// the NVRAM read latency.
const LINE_FLUSHED: u8 = 1;

/// A cache-line-aligned, zero-initialised raw memory arena.
struct RawArena {
    ptr: *mut u8,
    layout: Layout,
}

impl RawArena {
    fn new(size: usize) -> Self {
        let layout = Layout::from_size_align(size, CACHE_LINE).expect("invalid arena layout");
        // SAFETY: layout has non-zero size (callers guarantee size > 0).
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(
            !ptr.is_null(),
            "pmem arena allocation failed ({size} bytes)"
        );
        RawArena { ptr, layout }
    }
}

impl Drop for RawArena {
    fn drop(&mut self) {
        // SAFETY: `ptr` was allocated with exactly this layout in `new`.
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

// SAFETY: the arena is only ever accessed through atomic operations (see the
// accessors on `SimPool`), so concurrent access from multiple threads cannot
// produce data races.
unsafe impl Send for RawArena {}
unsafe impl Sync for RawArena {}

/// Per-thread record of persistence work that has been issued but not yet
/// ordered by a fence: lines with outstanding asynchronous flushes, and the
/// (offset, value) pairs of outstanding non-temporal stores.
#[derive(Default)]
struct PendingPersists {
    flushed_lines: Vec<u32>,
    nt_writes: Vec<(u32, u64)>,
}

/// Interior-mutability wrapper for the per-thread pending-persist slots.
///
/// Only the thread that owns thread id `tid` may call
/// `flush`/`sfence`/`nt_store_u64` with that `tid`; this single-owner
/// discipline (identical to how the paper's per-thread arrays are used) is
/// what makes the unsynchronised interior access sound.
struct PendingCell(UnsafeCell<PendingPersists>);

// SAFETY: each slot is only accessed by the single thread that owns the
// corresponding tid (documented contract of the persist API).
unsafe impl Sync for PendingCell {}

/// The simulated persistent-memory backend. See the [module docs](self).
pub(crate) struct SimPool {
    working: RawArena,
    persistent: RawArena,
    line_states: Box<[AtomicU8]>,
    pending: Box<[CachePadded<PendingCell>]>,
    /// Durable root slots: working value and the value a crash preserves.
    roots_working: [AtomicU64; ROOT_SLOTS],
    roots_persistent: [AtomicU64; ROOT_SLOTS],
    size: usize,
    watermark: AtomicU32,
    pub(crate) stats: Stats,
    config: PoolConfig,
    eviction_threshold: u64,
    rng: AtomicU64,
}

impl SimPool {
    /// Creates a fresh, zeroed simulated pool.
    pub(crate) fn new(config: PoolConfig) -> Self {
        assert!(
            config.size <= u32::MAX as usize,
            "pool size must be addressable by a 32-bit PRef"
        );
        let min = layout::HEAP_START as usize + CACHE_LINE;
        let size = layout::align_up(config.size.max(min) as u32, CACHE_LINE as u32) as usize;
        let lines = size / CACHE_LINE;
        let line_states = (0..lines).map(|_| AtomicU8::new(LINE_CACHED)).collect();
        let pending = (0..MAX_THREADS)
            .map(|_| CachePadded::new(PendingCell(UnsafeCell::new(PendingPersists::default()))))
            .collect();
        let eviction_threshold = probability_to_threshold(config.eviction_probability);
        SimPool {
            working: RawArena::new(size),
            persistent: RawArena::new(size),
            line_states,
            pending,
            roots_working: Default::default(),
            roots_persistent: Default::default(),
            size,
            watermark: AtomicU32::new(layout::HEAP_START),
            stats: Stats::default(),
            config,
            eviction_threshold,
            rng: AtomicU64::new(config.eviction_seed | 1),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.size
    }

    // ------------------------------------------------------------------
    // Address translation
    // ------------------------------------------------------------------

    #[inline]
    fn check_bounds(&self, off: u32, bytes: u32) {
        debug_assert!(
            off as usize + bytes as usize <= self.size,
            "pmem access out of bounds"
        );
        debug_assert_eq!(off % bytes, 0, "unaligned pmem access");
        debug_assert_eq!(
            (off as usize) / CACHE_LINE,
            (off as usize + bytes as usize - 1) / CACHE_LINE,
            "pmem access crosses a cache line"
        );
    }

    #[inline]
    fn working_u64(&self, off: u32) -> &AtomicU64 {
        self.check_bounds(off, 8);
        // SAFETY: in bounds, 8-byte aligned, and the arena lives as long as
        // `self`; the arena is only accessed through atomics.
        unsafe { &*(self.working.ptr.add(off as usize) as *const AtomicU64) }
    }

    #[inline]
    fn persistent_u64(&self, off: u32) -> &AtomicU64 {
        self.check_bounds(off, 8);
        // SAFETY: as above.
        unsafe { &*(self.persistent.ptr.add(off as usize) as *const AtomicU64) }
    }

    // ------------------------------------------------------------------
    // Instrumented access (the "did we touch a flushed line?" check)
    // ------------------------------------------------------------------

    /// Applies the post-flush-access accounting and penalty to the cache line
    /// containing `off`, then (re)marks it as cached.
    #[inline]
    fn touch(&self, off: u32) {
        let line = layout::line_of(off) as usize;
        let state = &self.line_states[line];
        if state.load(Ordering::Relaxed) == LINE_FLUSHED {
            state.store(LINE_CACHED, Ordering::Relaxed);
            self.stats
                .post_flush_accesses
                .fetch_add(1, Ordering::Relaxed);
            spin_delay(self.config.latency.nvram_read_ns);
        }
    }

    /// Possibly persists the line containing `off`, simulating an implicit
    /// cache eviction, when the adversary is enabled.
    #[inline]
    fn maybe_evict(&self, off: u32) {
        if self.eviction_threshold != 0 && self.next_rand() < self.eviction_threshold {
            self.persist_line(layout::line_of(off));
            self.stats
                .implicit_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn next_rand(&self) -> u64 {
        // SplitMix64 over a Weyl sequence; statistical quality is more than
        // enough for an eviction adversary and it is wait-free.
        let mut z = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    // ------------------------------------------------------------------
    // Loads / stores / CAS on the working image
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn load_u64(&self, off: u32) -> u64 {
        self.touch(off);
        self.stats.loads.fetch_add(1, Ordering::Relaxed);
        self.working_u64(off).load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn store_u64(&self, off: u32, val: u64) {
        self.touch(off);
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        self.working_u64(off).store(val, Ordering::Release);
        self.maybe_evict(off);
    }

    #[inline]
    pub(crate) fn cas_u64(&self, off: u32, current: u64, new: u64) -> Result<u64, u64> {
        self.touch(off);
        self.stats.cas_ops.fetch_add(1, Ordering::Relaxed);
        let r = self.working_u64(off).compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if r.is_ok() {
            self.maybe_evict(off);
        }
        r
    }

    #[inline]
    pub(crate) fn fetch_add_u64(&self, off: u32, val: u64) -> u64 {
        self.touch(off);
        self.stats.cas_ops.fetch_add(1, Ordering::Relaxed);
        let r = self.working_u64(off).fetch_add(val, Ordering::AcqRel);
        self.maybe_evict(off);
        r
    }

    #[inline]
    pub(crate) fn swap_u64(&self, off: u32, val: u64) -> u64 {
        self.touch(off);
        self.stats.cas_ops.fetch_add(1, Ordering::Relaxed);
        let r = self.working_u64(off).swap(val, Ordering::AcqRel);
        self.maybe_evict(off);
        r
    }

    // ------------------------------------------------------------------
    // Persistence primitives
    // ------------------------------------------------------------------

    fn with_pending<R>(&self, tid: usize, f: impl FnOnce(&mut PendingPersists) -> R) -> R {
        assert!(tid < MAX_THREADS, "tid {tid} exceeds MAX_THREADS");
        // SAFETY: by the documented contract, only the owner of `tid` calls
        // the persist API with this tid, so there is no concurrent access.
        // The mutable borrow is confined to this call so it cannot be held
        // across another persist-API call for the same tid.
        f(unsafe { &mut *self.pending[tid].0.get() })
    }

    /// Copies the current working content of `line` into the persistent
    /// image. Whole-line, so Assumption 1 holds by construction.
    fn persist_line(&self, line: u32) {
        let base = line * CACHE_LINE as u32;
        for i in 0..(CACHE_LINE as u32 / 8) {
            let off = base + i * 8;
            let v = self.working_u64(off).load(Ordering::Acquire);
            self.persistent_u64(off).store(v, Ordering::Release);
        }
    }

    #[inline]
    pub(crate) fn flush(&self, tid: usize, off: u32) {
        debug_assert!((off as usize) < self.size);
        let line = layout::line_of(off);
        self.line_states[line as usize].store(LINE_FLUSHED, Ordering::Relaxed);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        if self.config.deferred_persist {
            self.with_pending(tid, |pending| pending.flushed_lines.push(line));
        } else {
            self.persist_line(line);
        }
        spin_delay(self.config.latency.flush_ns);
    }

    pub(crate) fn sfence(&self, tid: usize) {
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        let (lines, nt) = self.with_pending(tid, |pending| {
            (
                std::mem::take(&mut pending.flushed_lines),
                std::mem::take(&mut pending.nt_writes),
            )
        });
        for line in lines {
            self.persist_line(line);
        }
        for (off, val) in nt {
            self.persistent_u64(off).store(val, Ordering::Release);
        }
        spin_delay(self.config.latency.fence_ns);
    }

    #[inline]
    pub(crate) fn nt_store_u64(&self, tid: usize, off: u32, val: u64) {
        self.stats.nt_stores.fetch_add(1, Ordering::Relaxed);
        self.working_u64(off).store(val, Ordering::Release);
        if self.config.deferred_persist {
            self.with_pending(tid, |pending| pending.nt_writes.push((off, val)));
        } else {
            self.persistent_u64(off).store(val, Ordering::Release);
        }
        spin_delay(self.config.latency.nt_store_ns);
    }

    pub(crate) fn persist_now(&self, off: u32) {
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let line = layout::line_of(off);
        self.line_states[line as usize].store(LINE_FLUSHED, Ordering::Relaxed);
        self.persist_line(line);
    }

    pub(crate) fn mark_line_cached(&self, off: u32) {
        let line = layout::line_of(off) as usize;
        self.line_states[line].store(LINE_CACHED, Ordering::Relaxed);
    }

    pub(crate) fn zero_range(&self, off: u32, len: u32) {
        assert_eq!(off % 8, 0);
        assert_eq!(len % 8, 0);
        assert!(off as usize + len as usize <= self.size);
        for i in 0..(len / 8) {
            let o = off + i * 8;
            self.working_u64(o).store(0, Ordering::Release);
        }
        self.stats
            .stores
            .fetch_add((len / 8) as u64, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Watermark and root slots
    // ------------------------------------------------------------------

    pub(crate) fn watermark(&self) -> u32 {
        self.watermark.load(Ordering::Acquire)
    }

    pub(crate) fn cas_watermark(&self, current: u32, new: u32) -> Result<u32, u32> {
        self.watermark
            .compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    pub(crate) fn root_u64(&self, slot: usize) -> u64 {
        self.roots_working[slot].load(Ordering::Acquire)
    }

    /// Root-slot writes persist immediately (they are rare, recovery-facing
    /// metadata, not hot-path queue state).
    pub(crate) fn set_root_u64(&self, slot: usize, val: u64) {
        self.roots_working[slot].store(val, Ordering::Release);
        self.roots_persistent[slot].store(val, Ordering::Release);
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    pub(crate) fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    pub(crate) fn reset_stats(&self) {
        self.stats.reset();
    }

    // ------------------------------------------------------------------
    // Crash simulation
    // ------------------------------------------------------------------

    pub(crate) fn persistent_u64_at(&self, off: u32) -> u64 {
        self.persistent_u64(off).load(Ordering::Acquire)
    }

    pub(crate) fn simulate_crash_with_evictions(&self, probability: f64, seed: u64) -> SimPool {
        let recovered = SimPool::new(self.config);
        // Loop: cas_watermark is a weak CAS and may fail spuriously even on
        // this freshly created, uncontended pool.
        let w = self.watermark();
        let mut cur = layout::HEAP_START;
        while cur < w {
            match recovered.cas_watermark(cur, w) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let threshold = probability_to_threshold(probability);
        let mut rng_state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let lines = self.size / CACHE_LINE;
        for line in 0..lines as u32 {
            let evicted = threshold != 0 && next() < threshold;
            let base = line * CACHE_LINE as u32;
            for i in 0..(CACHE_LINE as u32 / 8) {
                let off = base + i * 8;
                let src = if evicted {
                    // The line was written back at crash time: its working
                    // content survives.
                    self.working_u64(off).load(Ordering::Acquire)
                } else {
                    self.persistent_u64(off).load(Ordering::Acquire)
                };
                recovered.working_u64(off).store(src, Ordering::Release);
                recovered.persistent_u64(off).store(src, Ordering::Release);
            }
        }
        for slot in 0..ROOT_SLOTS {
            let v = self.roots_persistent[slot].load(Ordering::Acquire);
            recovered.set_root_u64(slot, v);
        }
        recovered
    }
}

pub(crate) fn probability_to_threshold(probability: f64) -> u64 {
    if probability <= 0.0 {
        0
    } else if probability >= 1.0 {
        u64::MAX
    } else {
        (probability * u64::MAX as f64) as u64
    }
}
