//! The latency model applied to persistence events.
//!
//! The paper's central finding is that on Cascade Lake + Optane, flush
//! instructions invalidate the flushed cache line, so a subsequent access is
//! served from NVRAM at a read latency several times higher than DRAM (the
//! paper cites van Renen et al. and Yang et al. for measurements). The
//! simulator reproduces the *relative* cost structure with four configurable
//! delays; functional tests run with all delays at zero, the benchmarks use
//! [`LatencyModel::optane_like`].

use std::time::{Duration, Instant};

/// Configurable delays (in nanoseconds) charged by the simulated pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cost of issuing an asynchronous flush (CLWB/CLFLUSHOPT issue cost).
    pub flush_ns: u32,
    /// Cost of a blocking store fence (SFENCE waiting for pending flushes).
    pub fence_ns: u32,
    /// Cost of touching a cache line that was invalidated by a flush — the
    /// NVRAM read latency the second amendment avoids paying.
    pub nvram_read_ns: u32,
    /// Cost of a non-temporal store (`movnti`).
    pub nt_store_ns: u32,
}

impl LatencyModel {
    /// No delays at all. Used by functional and property tests, where only
    /// the persistence *semantics* matter.
    pub const ZERO: LatencyModel = LatencyModel {
        flush_ns: 0,
        fence_ns: 0,
        nvram_read_ns: 0,
        nt_store_ns: 0,
    };

    /// Delays in the range reported for Optane DC Persistent Memory behind a
    /// Cascade Lake cache hierarchy. Absolute values are not calibrated to a
    /// specific DIMM; what matters for reproducing the paper's Figure 2 is
    /// that the post-flush (NVRAM read) penalty clearly dominates the flush
    /// issue cost.
    pub const fn optane_like() -> LatencyModel {
        LatencyModel {
            flush_ns: 40,
            fence_ns: 100,
            nvram_read_ns: 300,
            nt_store_ns: 60,
        }
    }

    /// A model with the post-flush read penalty removed, used by the
    /// ablation experiment (E9) to emulate a hypothetical platform whose
    /// flushes do not invalidate cache lines.
    pub const fn no_invalidation_penalty() -> LatencyModel {
        LatencyModel {
            nvram_read_ns: 0,
            ..Self::optane_like()
        }
    }

    /// Returns `true` if every delay is zero.
    pub fn is_zero(&self) -> bool {
        self.flush_ns == 0 && self.fence_ns == 0 && self.nvram_read_ns == 0 && self.nt_store_ns == 0
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::ZERO
    }
}

/// Busy-waits for approximately `ns` nanoseconds.
///
/// A spin wait (rather than `thread::sleep`) mirrors the blocking nature of
/// the modelled instructions: the issuing core is stalled, other cores are
/// not. A zero argument returns immediately.
#[inline]
pub fn spin_delay(ns: u32) {
    if ns == 0 {
        return;
    }
    let target = Duration::from_nanos(ns as u64);
    let start = Instant::now();
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_zero() {
        assert!(LatencyModel::ZERO.is_zero());
        assert!(!LatencyModel::optane_like().is_zero());
    }

    #[test]
    fn ablation_model_keeps_other_costs() {
        let m = LatencyModel::no_invalidation_penalty();
        assert_eq!(m.nvram_read_ns, 0);
        assert_eq!(m.flush_ns, LatencyModel::optane_like().flush_ns);
        assert_eq!(m.fence_ns, LatencyModel::optane_like().fence_ns);
    }

    #[test]
    fn spin_delay_zero_returns_immediately() {
        let start = Instant::now();
        spin_delay(0);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn spin_delay_waits_roughly_the_requested_time() {
        let start = Instant::now();
        spin_delay(200_000); // 200 µs — long enough to measure reliably.
        assert!(start.elapsed() >= Duration::from_micros(200));
    }
}
