//! Real persistence intrinsics for the production path.
//!
//! On actual NVRAM hardware the queues would persist data with the x86-64
//! instructions the paper names: `CLWB`/`CLFLUSHOPT` (cache-line write-back),
//! `SFENCE` (store fence) and `movnti` (non-temporal store). This module
//! wraps the stable subset of those intrinsics so that the persistence-cost
//! microbenchmarks (`cargo bench -p bench --bench persist_ops`) can measure
//! them against ordinary DRAM-backed memory, alongside the simulator.
//!
//! On non-x86-64 targets the functions degrade to plain stores and compiler
//! fences so the crate still builds everywhere.

/// Flushes the cache line containing `addr` (CLFLUSH — invalidating, like
/// the behaviour the paper observed even for CLWB on Cascade Lake).
///
/// # Safety
/// `addr` must be a valid pointer into readable memory.
#[inline]
pub unsafe fn clflush(addr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: caller guarantees `addr` is valid; CLFLUSH has no other
    // preconditions on x86-64.
    unsafe {
        core::arch::x86_64::_mm_clflush(addr);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = addr;
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }
}

/// Store fence (SFENCE): orders all previous stores, flushes and
/// non-temporal stores before any later store.
#[inline]
pub fn sfence() {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SFENCE has no preconditions.
    unsafe {
        core::arch::x86_64::_mm_sfence();
    }
    #[cfg(not(target_arch = "x86_64"))]
    std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
}

/// Non-temporal 64-bit store (`movnti`): writes `val` to `*addr` bypassing
/// the cache.
///
/// # Safety
/// `addr` must be valid for writes of 8 bytes and 8-byte aligned, and no
/// other thread may concurrently access it non-atomically.
#[inline]
pub unsafe fn nt_store_u64(addr: *mut u64, val: u64) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: caller guarantees alignment and validity.
    unsafe {
        core::arch::x86_64::_mm_stream_si64(addr as *mut i64, val as i64);
    }
    #[cfg(not(target_arch = "x86_64"))]
    // SAFETY: caller guarantees alignment and validity.
    unsafe {
        std::ptr::write_volatile(addr, val);
    }
}

/// Persists `[addr, addr + len)`: flushes every overlapping cache line and
/// fences. The building block a real-NVRAM backend would use.
///
/// # Safety
/// The whole range must be valid readable memory.
pub unsafe fn persist_range(addr: *const u8, len: usize) {
    let line = crate::layout::CACHE_LINE;
    let start = addr as usize & !(line - 1);
    let end = addr as usize + len;
    let mut p = start;
    while p < end {
        // SAFETY: stays within (or on the boundary lines of) the caller's
        // valid range.
        unsafe { clflush(p as *const u8) };
        p += line;
    }
    sfence();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsics_do_not_corrupt_data() {
        let mut buf = vec![0u64; 64];
        for (i, v) in buf.iter_mut().enumerate() {
            *v = i as u64;
        }
        // SAFETY: `buf` is valid, owned, aligned memory.
        unsafe {
            persist_range(buf.as_ptr() as *const u8, buf.len() * 8);
            nt_store_u64(buf.as_mut_ptr(), 999);
        }
        sfence();
        assert_eq!(buf[0], 999);
        for (i, v) in buf.iter().enumerate().skip(1) {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn sfence_is_callable_repeatedly() {
        for _ in 0..100 {
            sfence();
        }
    }
}
