//! Position-independent persistent references.

use std::fmt;

/// A persistent reference: a 32-bit byte offset into a [`crate::PmemPool`].
///
/// Persistent data structures must not store raw pointers, because the pool
/// can be re-mapped (here: re-created by [`crate::PmemPool::simulate_crash`])
/// at a different address after a restart. `PRef` is the stable name of a
/// location; it is translated to an address only at access time, by the pool.
///
/// Offset `0` is reserved by the pool and never handed out, so it doubles as
/// the null reference ([`PRef::NULL`]). A `PRef` is freely convertible to and
/// from a `u64` so it can be packed next to other fields inside a single
/// atomic word (the packed head pointer + head index of UnlinkedQ, for
/// example).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PRef(pub u32);

impl PRef {
    /// The null reference (offset 0, which the pool reserves).
    pub const NULL: PRef = PRef(0);

    /// Returns `true` if this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The raw byte offset.
    #[inline]
    pub fn offset(self) -> u32 {
        self.0
    }

    /// Builds a reference from a raw byte offset.
    #[inline]
    pub fn from_offset(off: u32) -> Self {
        PRef(off)
    }

    /// Returns the reference to `self + bytes`, for addressing a field at a
    /// fixed byte offset within an object.
    #[inline]
    pub fn field(self, bytes: u32) -> PRef {
        debug_assert!(!self.is_null());
        PRef(self.0 + bytes)
    }

    /// Packs the reference into the low 32 bits of a `u64`.
    #[inline]
    pub fn to_u64(self) -> u64 {
        self.0 as u64
    }

    /// Unpacks a reference from the low 32 bits of a `u64`.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        PRef(v as u32)
    }
}

impl Default for PRef {
    fn default() -> Self {
        PRef::NULL
    }
}

impl fmt::Debug for PRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PRef(NULL)")
        } else {
            write!(f, "PRef({:#x})", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        assert!(PRef::NULL.is_null());
        assert!(PRef::default().is_null());
        assert_eq!(PRef::from_u64(PRef::NULL.to_u64()), PRef::NULL);
    }

    #[test]
    fn field_addressing() {
        let r = PRef::from_offset(128);
        assert_eq!(r.field(8).offset(), 136);
        assert_eq!(r.field(0), r);
    }

    #[test]
    fn u64_packing_preserves_offset() {
        let r = PRef::from_offset(0xDEAD_BEE0);
        let packed = r.to_u64() | (7u64 << 32);
        assert_eq!(PRef::from_u64(packed & 0xFFFF_FFFF), r);
    }
}
