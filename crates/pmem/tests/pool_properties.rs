//! Property-based tests of the persistent-memory simulator.
//!
//! These check the invariants every queue algorithm in the workspace relies
//! on: persistence is at line granularity and prefix-consistent
//! (Assumption 1), flushed+fenced data always survives a crash, never-flushed
//! data survives only under the eviction adversary, and the persistence
//! counters add up.

use pmem::{layout, PmemPool, PoolConfig};
use proptest::prelude::*;

/// A small script of operations against a handful of 64-bit slots spread
/// over a few cache lines.
#[derive(Clone, Debug)]
enum Op {
    Store { slot: usize, val: u64 },
    Flush { slot: usize },
    Fence,
    NtStore { slot: usize, val: u64 },
}

const SLOTS: usize = 16; // 16 slots × 8 bytes = 2 cache lines per group of 8

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SLOTS, any::<u64>()).prop_map(|(slot, val)| Op::Store { slot, val }),
        (0..SLOTS).prop_map(|slot| Op::Flush { slot }),
        Just(Op::Fence),
        (0..SLOTS, any::<u64>()).prop_map(|(slot, val)| Op::NtStore { slot, val }),
    ]
}

/// A model of what must be persistent: for every slot, the set of values
/// that would be acceptable after a crash (either the last value known
/// persistent, or — because whole lines are persisted together — any value
/// persisted by a later flush of the same line).
struct Model {
    /// Last written (working) value per slot.
    working: Vec<u64>,
    /// Guaranteed-persistent value per slot.
    persistent: Vec<u64>,
    /// Lines flushed but not yet fenced (per single simulated thread).
    pending_lines: Vec<usize>,
    /// NT stores not yet fenced.
    pending_nt: Vec<(usize, u64)>,
}

impl Model {
    fn new() -> Self {
        Model {
            working: vec![0; SLOTS],
            persistent: vec![0; SLOTS],
            pending_lines: Vec::new(),
            pending_nt: Vec::new(),
        }
    }
    fn line_of(slot: usize) -> usize {
        slot * 8 / layout::CACHE_LINE
    }
    fn apply(&mut self, op: &Op) {
        match op {
            Op::Store { slot, val } => self.working[*slot] = *val,
            Op::NtStore { slot, val } => {
                self.working[*slot] = *val;
                self.pending_nt.push((*slot, *val));
            }
            Op::Flush { slot } => self.pending_lines.push(Self::line_of(*slot)),
            Op::Fence => {
                for line in self.pending_lines.drain(..) {
                    for slot in 0..SLOTS {
                        if Self::line_of(slot) == line {
                            self.persistent[slot] = self.working[slot];
                        }
                    }
                }
                for (slot, val) in self.pending_nt.drain(..) {
                    self.persistent[slot] = val;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any sequence of stores/flushes/fences/nt-stores by one thread,
    /// a crash recovers exactly the model's guaranteed-persistent values
    /// (the simulator persists *at fence time*, which the model mirrors).
    #[test]
    fn crash_recovers_exactly_the_fenced_state(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let pool = PmemPool::new(PoolConfig::small_test());
        let base = pool.alloc_raw((SLOTS * 8) as u32, 64);
        let mut model = Model::new();
        for op in &ops {
            match op {
                Op::Store { slot, val } => pool.store_u64(base + (*slot as u32) * 8, *val),
                Op::NtStore { slot, val } => pool.nt_store_u64(0, base + (*slot as u32) * 8, *val),
                Op::Flush { slot } => pool.flush(0, base + (*slot as u32) * 8),
                Op::Fence => pool.sfence(0),
            }
            model.apply(op);
        }
        let recovered = pool.simulate_crash();
        for slot in 0..SLOTS {
            prop_assert_eq!(recovered.load_u64(base + (slot as u32) * 8), model.persistent[slot],
                "slot {} diverged", slot);
        }
    }

    /// The working image always reflects program order, regardless of
    /// flushes/fences.
    #[test]
    fn working_image_reflects_last_store(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let pool = PmemPool::new(PoolConfig::small_test());
        let base = pool.alloc_raw((SLOTS * 8) as u32, 64);
        let mut model = Model::new();
        for op in &ops {
            match op {
                Op::Store { slot, val } => pool.store_u64(base + (*slot as u32) * 8, *val),
                Op::NtStore { slot, val } => pool.nt_store_u64(0, base + (*slot as u32) * 8, *val),
                Op::Flush { slot } => pool.flush(0, base + (*slot as u32) * 8),
                Op::Fence => pool.sfence(0),
            }
            model.apply(op);
        }
        for slot in 0..SLOTS {
            prop_assert_eq!(pool.load_u64(base + (slot as u32) * 8), model.working[slot]);
        }
    }

    /// With the eviction adversary at probability 1.0 every store is
    /// immediately persistent; with 0.0 and no flushes nothing is.
    #[test]
    fn eviction_probability_extremes(vals in proptest::collection::vec(any::<u64>(), 1..32)) {
        let evict = PmemPool::new(PoolConfig::small_test().with_evictions(1.0, 7));
        let keep = PmemPool::new(PoolConfig::small_test());
        let base_e = evict.alloc_raw(64 * 32, 64);
        let base_k = keep.alloc_raw(64 * 32, 64);
        for (i, v) in vals.iter().enumerate() {
            evict.store_u64(base_e + (i as u32) * 64, *v);
            keep.store_u64(base_k + (i as u32) * 64, *v);
        }
        let re = evict.simulate_crash();
        let rk = keep.simulate_crash();
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(re.load_u64(base_e + (i as u32) * 64), *v);
            prop_assert_eq!(rk.load_u64(base_k + (i as u32) * 64), 0);
        }
    }

    /// Counters: fences and flushes equal the number issued; post-flush
    /// accesses only arise from touching a flushed line.
    #[test]
    fn counters_are_consistent(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let pool = PmemPool::new(PoolConfig::small_test());
        let base = pool.alloc_raw((SLOTS * 8) as u32, 64);
        let mut flushes = 0u64;
        let mut fences = 0u64;
        let mut nt = 0u64;
        for op in &ops {
            match op {
                Op::Store { slot, val } => pool.store_u64(base + (*slot as u32) * 8, *val),
                Op::NtStore { slot, val } => { pool.nt_store_u64(0, base + (*slot as u32) * 8, *val); nt += 1; }
                Op::Flush { slot } => { pool.flush(0, base + (*slot as u32) * 8); flushes += 1; }
                Op::Fence => { pool.sfence(0); fences += 1; }
            }
        }
        let s = pool.stats();
        prop_assert_eq!(s.flushes, flushes);
        prop_assert_eq!(s.fences, fences);
        prop_assert_eq!(s.nt_stores, nt);
        // Every post-flush access must be explained by at least one flush.
        prop_assert!(s.post_flush_accesses <= s.flushes.max(1) * SLOTS as u64);
    }
}
