//! The persistent directory of designated allocation areas.
//!
//! The directory occupies the fixed pool region
//! [`pmem::layout::SSMEM_DIR`] .. `SSMEM_DIR + SSMEM_DIR_LEN`. Each entry is
//! one cache line and describes one designated area. An entry is published
//! with its `valid` word written last and the whole line flushed + fenced, so
//! after a crash the recovery sees either a complete entry or no entry at all
//! (Assumption 1: a cache line persists as a prefix of its stores, and the
//! area fields are written before `valid`).
//!
//! If a crash lands between reserving a directory slot and persisting the
//! entry, the area's space is leaked but the directory stays consistent —
//! the same guarantee the paper's allocator provides.

use pmem::layout::{CACHE_LINE, SSMEM_DIR, SSMEM_DIR_LEN};
use pmem::{PRef, PmemPool};

/// Byte offsets of the entry fields within an entry line.
const F_OFFSET: u32 = 0;
const F_OBJ_SIZE: u32 = 8;
const F_NUM_OBJECTS: u32 = 16;
const F_OWNER_TID: u32 = 24;
const F_VALID: u32 = 32;

/// First entry line (the first line of the region is reserved).
const ENTRIES_START: u32 = SSMEM_DIR + CACHE_LINE as u32;

/// Maximum number of designated areas a pool can record.
pub const MAX_AREAS: u32 = (SSMEM_DIR_LEN - CACHE_LINE as u32) / CACHE_LINE as u32;

/// A decoded directory entry: one designated allocation area.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AreaInfo {
    /// Pool offset of the first object slot.
    pub offset: u32,
    /// Size of each object slot in bytes (a multiple of the cache-line size).
    pub obj_size: u32,
    /// Number of object slots in the area.
    pub num_objects: u32,
    /// Thread that owns the area's bump allocator.
    pub owner_tid: u32,
}

impl AreaInfo {
    /// The object slot at `idx`.
    pub fn object(&self, idx: u32) -> PRef {
        debug_assert!(idx < self.num_objects);
        PRef::from_offset(self.offset + idx * self.obj_size)
    }

    /// Iterates over every object slot in the area.
    pub fn objects(&self) -> impl Iterator<Item = PRef> + '_ {
        (0..self.num_objects).map(move |i| self.object(i))
    }

    /// Total size of the area in bytes.
    pub fn len(&self) -> u32 {
        self.obj_size * self.num_objects
    }

    /// True if the area holds no objects (never the case for published
    /// entries).
    pub fn is_empty(&self) -> bool {
        self.num_objects == 0
    }
}

/// Reads entry `slot` from the persistent directory, if it is valid.
pub fn read_entry(pool: &PmemPool, slot: u32) -> Option<AreaInfo> {
    assert!(slot < MAX_AREAS);
    let base = ENTRIES_START + slot * CACHE_LINE as u32;
    if pool.load_u64(base + F_VALID) != 1 {
        return None;
    }
    Some(AreaInfo {
        offset: pool.load_u64(base + F_OFFSET) as u32,
        obj_size: pool.load_u64(base + F_OBJ_SIZE) as u32,
        num_objects: pool.load_u64(base + F_NUM_OBJECTS) as u32,
        owner_tid: pool.load_u64(base + F_OWNER_TID) as u32,
    })
}

/// Writes and durably publishes entry `slot`. The caller must own the slot
/// (slots are reserved by a volatile counter in [`crate::Ssmem`]).
pub fn publish_entry(pool: &PmemPool, tid: usize, slot: u32, area: &AreaInfo) {
    assert!(slot < MAX_AREAS, "ssmem area directory is full");
    let base = ENTRIES_START + slot * CACHE_LINE as u32;
    pool.store_u64(base + F_OFFSET, area.offset as u64);
    pool.store_u64(base + F_OBJ_SIZE, area.obj_size as u64);
    pool.store_u64(base + F_NUM_OBJECTS, area.num_objects as u64);
    pool.store_u64(base + F_OWNER_TID, area.owner_tid as u64);
    pool.store_u64(base + F_VALID, 1);
    pool.flush(tid, base);
    pool.sfence(tid);
}

/// Enumerates every valid entry in the directory, in slot order, together
/// with its slot index.
pub fn read_all(pool: &PmemPool) -> Vec<(u32, AreaInfo)> {
    (0..MAX_AREAS)
        .filter_map(|slot| read_entry(pool, slot).map(|a| (slot, a)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_test())
    }

    #[test]
    fn empty_directory_has_no_entries() {
        let p = pool();
        assert!(read_all(&p).is_empty());
        assert_eq!(read_entry(&p, 0), None);
    }

    #[test]
    fn publish_then_read_roundtrip() {
        let p = pool();
        let area = AreaInfo {
            offset: p.alloc_raw(64 * 16, 64),
            obj_size: 64,
            num_objects: 16,
            owner_tid: 3,
        };
        publish_entry(&p, 0, 0, &area);
        assert_eq!(read_entry(&p, 0), Some(area));
        assert_eq!(read_all(&p), vec![(0, area)]);
    }

    #[test]
    fn published_entries_survive_a_crash() {
        let p = pool();
        let a0 = AreaInfo {
            offset: p.alloc_raw(64 * 8, 64),
            obj_size: 64,
            num_objects: 8,
            owner_tid: 0,
        };
        let a1 = AreaInfo {
            offset: p.alloc_raw(128 * 4, 64),
            obj_size: 128,
            num_objects: 4,
            owner_tid: 1,
        };
        publish_entry(&p, 0, 0, &a0);
        publish_entry(&p, 1, 5, &a1);
        let r = p.simulate_crash();
        let entries = read_all(&r);
        assert_eq!(entries, vec![(0, a0), (5, a1)]);
    }

    #[test]
    fn unpublished_entry_does_not_survive_a_crash() {
        let p = pool();
        let area = AreaInfo {
            offset: p.alloc_raw(64 * 8, 64),
            obj_size: 64,
            num_objects: 8,
            owner_tid: 0,
        };
        // Write the fields but "crash" before the flush/fence.
        let base = ENTRIES_START;
        p.store_u64(base + F_OFFSET, area.offset as u64);
        p.store_u64(base + F_VALID, 1);
        let r = p.simulate_crash();
        assert_eq!(read_entry(&r, 0), None);
    }

    #[test]
    fn area_object_addressing() {
        let area = AreaInfo {
            offset: 4096,
            obj_size: 64,
            num_objects: 4,
            owner_tid: 0,
        };
        let objs: Vec<_> = area.objects().collect();
        assert_eq!(objs.len(), 4);
        assert_eq!(objs[0].offset(), 4096);
        assert_eq!(objs[3].offset(), 4096 + 3 * 64);
        assert_eq!(area.len(), 256);
        assert!(!area.is_empty());
    }

    #[test]
    fn directory_capacity_is_large_enough_for_benchmarks() {
        // The dequeue-heavy workload pre-fills ~1M nodes; with the default
        // 1 MiB areas that is 64 areas, far below the capacity.
        const { assert!(MAX_AREAS >= 256) };
    }
}
