//! The per-thread durable allocator.

use crate::dir::{self, AreaInfo};
use crate::epoch::EpochManager;
use crossbeam_utils::CachePadded;
use pmem::{PRef, PmemPool};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Configuration of a [`Ssmem`] allocator.
#[derive(Clone, Copy, Debug)]
pub struct SsmemConfig {
    /// Size of every object in bytes. Must be a non-zero multiple of the
    /// cache-line size so that no two objects share a cache line (required by
    /// Assumption 1 and by the false-sharing discipline of the paper).
    pub obj_size: u32,
    /// Size of a designated area in bytes.
    pub area_size: u32,
    /// Maximum number of threads.
    pub max_threads: usize,
}

impl SsmemConfig {
    /// 64-byte objects, 256 KiB areas — suitable for tests.
    pub fn small(max_threads: usize) -> Self {
        SsmemConfig {
            obj_size: 64,
            area_size: 256 * 1024,
            max_threads,
        }
    }

    /// 64-byte objects, 4 MiB areas — suitable for benchmarks.
    pub fn bench(max_threads: usize) -> Self {
        SsmemConfig {
            obj_size: 64,
            area_size: 4 * 1024 * 1024,
            max_threads,
        }
    }

    fn objects_per_area(&self) -> u32 {
        self.area_size / self.obj_size
    }
}

/// Per-thread allocator state. Only the owning thread touches it (same
/// single-owner discipline as the paper's per-thread allocators).
struct PerThread {
    bump: u32,
    area_end: u32,
    free: Vec<PRef>,
    limbo: VecDeque<(u64, PRef)>,
    retires_since_advance: u32,
}

impl PerThread {
    fn new() -> Self {
        PerThread {
            bump: 0,
            area_end: 0,
            free: Vec::new(),
            limbo: VecDeque::new(),
            retires_since_advance: 0,
        }
    }
}

struct PerThreadCell(UnsafeCell<PerThread>);

// SAFETY: each cell is only accessed by the thread owning the corresponding
// tid (documented contract of every method taking `tid`).
unsafe impl Sync for PerThreadCell {}

/// The durable epoch-based allocator. See the [crate documentation](crate).
///
/// One `Ssmem` instance manages the object heap of one pool (it owns the
/// pool's persistent area directory).
pub struct Ssmem {
    pool: Arc<PmemPool>,
    config: SsmemConfig,
    epoch: Arc<EpochManager>,
    per_thread: Box<[CachePadded<PerThreadCell>]>,
    next_dir_slot: AtomicU32,
    /// When `false`, the allocator manages *volatile* objects: areas are not
    /// zero-persisted and not published in the persistent directory, so the
    /// recovery procedures never scan them. Used for the `Volatile` halves of
    /// the split nodes of OptUnlinkedQ/OptLinkedQ.
    durable: bool,
}

/// How many retires between attempts to advance the global epoch.
const ADVANCE_PERIOD: u32 = 64;

impl Ssmem {
    /// Creates a fresh allocator on a fresh pool.
    pub fn new(pool: Arc<PmemPool>, config: SsmemConfig) -> Self {
        Self::build(pool, config, 0, true)
    }

    /// Creates an allocator for **volatile** objects that merely live inside
    /// the pool's address space: its areas are not recorded in the persistent
    /// directory and are not zero-persisted, so they are invisible to
    /// recovery. It shares the given epoch manager so that one pin/unpin per
    /// operation protects persistent and volatile nodes alike.
    pub fn new_volatile(
        pool: Arc<PmemPool>,
        config: SsmemConfig,
        epoch: Arc<EpochManager>,
    ) -> Self {
        let mut s = Self::build(pool, config, 0, false);
        s.epoch = epoch;
        s
    }

    /// Re-creates the allocator after a crash: re-reads the persistent area
    /// directory so that already-carved areas are known and never re-carved.
    /// Free lists start empty; the data structure's recovery procedure
    /// returns dead object slots with [`free_immediate`](Self::free_immediate).
    pub fn recover(pool: Arc<PmemPool>, config: SsmemConfig) -> Self {
        let entries = dir::read_all(&pool);
        let next_slot = entries.iter().map(|(s, _)| s + 1).max().unwrap_or(0);
        let max_end = entries
            .iter()
            .map(|(_, a)| a.offset + a.len())
            .max()
            .unwrap_or(0);
        pool.set_watermark(max_end);
        Self::build(pool, config, next_slot, true)
    }

    fn build(pool: Arc<PmemPool>, config: SsmemConfig, next_slot: u32, durable: bool) -> Self {
        assert!(
            config.obj_size > 0 && config.obj_size.is_multiple_of(64),
            "obj_size must be a multiple of 64"
        );
        assert!(
            config.area_size >= config.obj_size,
            "area_size must hold at least one object"
        );
        assert!(config.max_threads <= pmem::MAX_THREADS);
        let per_thread = (0..config.max_threads)
            .map(|_| CachePadded::new(PerThreadCell(UnsafeCell::new(PerThread::new()))))
            .collect();
        Ssmem {
            pool,
            config,
            epoch: Arc::new(EpochManager::new(config.max_threads)),
            per_thread,
            next_dir_slot: AtomicU32::new(next_slot),
            durable,
        }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// The allocator configuration.
    pub fn config(&self) -> &SsmemConfig {
        &self.config
    }

    /// The epoch manager, shared so that volatile-node allocators (used by
    /// the Opt queues) can participate in the same reclamation epochs.
    pub fn epoch(&self) -> &Arc<EpochManager> {
        &self.epoch
    }

    /// Announces the start of an operation by thread `tid` (protects every
    /// node the operation may read from being reused).
    pub fn pin(&self, tid: usize) {
        self.epoch.pin(tid);
    }

    /// Announces the end of an operation by thread `tid`.
    pub fn unpin(&self, tid: usize) {
        self.epoch.unpin(tid);
    }

    fn with_per_thread<R>(&self, tid: usize, f: impl FnOnce(&mut PerThread) -> R) -> R {
        // SAFETY: single-owner contract — only the thread owning `tid` calls
        // allocator methods with this tid. The mutable borrow is confined to
        // this call, so it cannot alias another borrow for the same tid.
        f(unsafe { &mut *self.per_thread[tid].0.get() })
    }

    /// Allocates one object slot for thread `tid`.
    ///
    /// Slots taken from a freshly carved area are persistently zeroed (the
    /// area is zeroed, flushed and fenced before its directory entry is
    /// published). Slots recycled from the free list keep whatever content
    /// their previous user left; the queues rely on their own discipline
    /// (piggybacked flag clearing, head-index comparison) for those, exactly
    /// as in the paper.
    pub fn alloc(&self, tid: usize) -> PRef {
        let obj = self.with_per_thread(tid, |inner| {
            self.collect(inner);
            if let Some(p) = inner.free.pop() {
                p
            } else {
                if inner.bump + self.config.obj_size > inner.area_end || inner.area_end == 0 {
                    self.new_area(tid, inner);
                }
                let off = inner.bump;
                inner.bump += self.config.obj_size;
                PRef::from_offset(off)
            }
        });
        // A slot handed to a new object starts its life "in cache": its
        // previous life's flush must not be billed to the new object's first
        // access (see `PmemPool::mark_line_cached`).
        let mut line_off = obj.offset();
        while line_off < obj.offset() + self.config.obj_size {
            self.pool.mark_line_cached(line_off);
            line_off += 64;
        }
        obj
    }

    /// Retires an object: it will be reused only after every thread has
    /// passed through a quiescent state (two epoch advancements).
    pub fn retire(&self, tid: usize, obj: PRef) {
        debug_assert!(!obj.is_null());
        let should_advance = self.with_per_thread(tid, |inner| {
            inner.limbo.push_back((self.epoch.current(), obj));
            inner.retires_since_advance += 1;
            if inner.retires_since_advance >= ADVANCE_PERIOD {
                inner.retires_since_advance = 0;
                true
            } else {
                false
            }
        });
        if should_advance {
            self.epoch.try_advance();
        }
    }

    /// Returns an object directly to thread `tid`'s free list, bypassing the
    /// epoch scheme. Only safe when no other thread can hold a reference —
    /// i.e. during single-threaded recovery, which is its only caller.
    pub fn free_immediate(&self, tid: usize, obj: PRef) {
        debug_assert!(!obj.is_null());
        self.with_per_thread(tid, |inner| inner.free.push(obj));
    }

    /// Number of objects waiting in thread `tid`'s limbo list (retired but
    /// not yet safe to reuse). Exposed for tests.
    pub fn limbo_len(&self, tid: usize) -> usize {
        self.with_per_thread(tid, |inner| inner.limbo.len())
    }

    /// Moves limbo objects whose retirement epoch is old enough to the free
    /// list.
    fn collect(&self, inner: &mut PerThread) {
        while let Some(&(epoch, obj)) = inner.limbo.front() {
            if self.epoch.is_safe_to_reuse(epoch) {
                inner.free.push(obj);
                inner.limbo.pop_front();
            } else {
                break;
            }
        }
    }

    /// Carves a new designated area out of the pool for thread `tid`: zeroes
    /// it, persists the zeroes, and publishes it in the persistent directory.
    fn new_area(&self, tid: usize, inner: &mut PerThread) {
        let num_objects = self.config.objects_per_area();
        let len = num_objects * self.config.obj_size;
        let offset = self.pool.alloc_raw(len, 64);
        if self.durable {
            let slot = self.next_dir_slot.fetch_add(1, Ordering::AcqRel);
            self.pool.zero_range(offset, len);
            self.pool.flush_range(tid, offset, len);
            self.pool.sfence(tid);
            let area = AreaInfo {
                offset,
                obj_size: self.config.obj_size,
                num_objects,
                owner_tid: tid as u32,
            };
            dir::publish_entry(&self.pool, tid, slot, &area);
        }
        inner.bump = offset;
        inner.area_end = offset + len;
    }

    /// All designated areas recorded in the persistent directory.
    pub fn areas(&self) -> Vec<AreaInfo> {
        dir::read_all(&self.pool)
            .into_iter()
            .map(|(_, a)| a)
            .collect()
    }

    /// Calls `f` for every object slot in every designated area (used by the
    /// recovery procedures to classify slots as live or dead).
    pub fn for_each_object(&self, mut f: impl FnMut(PRef)) {
        for area in self.areas() {
            for obj in area.objects() {
                f(obj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;
    use std::collections::HashSet;

    fn setup() -> (Arc<PmemPool>, Ssmem) {
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        let cfg = SsmemConfig {
            obj_size: 64,
            area_size: 1024, // 16 objects per area: forces multi-area paths
            max_threads: 4,
        };
        let ssmem = Ssmem::new(Arc::clone(&pool), cfg);
        (pool, ssmem)
    }

    #[test]
    fn alloc_returns_distinct_aligned_slots() {
        let (_pool, ssmem) = setup();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let p = ssmem.alloc(0);
            assert!(!p.is_null());
            assert_eq!(p.offset() % 64, 0);
            assert!(seen.insert(p));
        }
    }

    #[test]
    fn exhausting_an_area_carves_a_new_one() {
        let (_pool, ssmem) = setup();
        for _ in 0..40 {
            ssmem.alloc(0);
        }
        assert!(ssmem.areas().len() >= 2);
    }

    #[test]
    fn distinct_threads_get_distinct_slots() {
        let (_pool, ssmem) = setup();
        let a: Vec<_> = (0..20).map(|_| ssmem.alloc(0)).collect();
        let b: Vec<_> = (0..20).map(|_| ssmem.alloc(1)).collect();
        let all: HashSet<_> = a.iter().chain(b.iter()).collect();
        assert_eq!(all.len(), 40);
    }

    #[test]
    fn fresh_slots_are_persistently_zero() {
        let (pool, ssmem) = setup();
        let p = ssmem.alloc(0);
        for i in 0..8 {
            assert_eq!(pool.load_u64(p.offset() + i * 8), 0);
            assert_eq!(pool.persistent_u64_at(p.offset() + i * 8), 0);
        }
    }

    #[test]
    fn free_immediate_recycles_before_new_slots() {
        let (_pool, ssmem) = setup();
        let p = ssmem.alloc(0);
        ssmem.free_immediate(0, p);
        assert_eq!(ssmem.alloc(0), p);
    }

    #[test]
    fn retired_slot_is_not_reused_while_a_thread_is_pinned_in_an_old_epoch() {
        let (_pool, ssmem) = setup();
        ssmem.pin(1); // thread 1 sits in the current epoch forever
        let p = ssmem.alloc(0);
        ssmem.retire(0, p);
        for _ in 0..10 {
            ssmem.epoch().try_advance();
            let q = ssmem.alloc(0);
            assert_ne!(q, p, "retired slot reused while a stale reader exists");
        }
        assert!(ssmem.limbo_len(0) >= 1);
    }

    #[test]
    fn retired_slot_is_reused_after_epochs_advance() {
        let (_pool, ssmem) = setup();
        let p = ssmem.alloc(0);
        ssmem.retire(0, p);
        ssmem.epoch().try_advance();
        ssmem.epoch().try_advance();
        let allocated: Vec<_> = (0..64).map(|_| ssmem.alloc(0)).collect();
        assert!(allocated.contains(&p), "retired slot never reused");
    }

    #[test]
    fn areas_survive_a_crash_and_recovery_does_not_recarve_them() {
        let (pool, ssmem) = setup();
        for _ in 0..40 {
            ssmem.alloc(0);
        }
        let areas_before = ssmem.areas();
        let recovered_pool = Arc::new(pool.simulate_crash());
        let recovered = Ssmem::recover(Arc::clone(&recovered_pool), *ssmem.config());
        assert_eq!(recovered.areas(), areas_before);
        // New allocations must not overlap any pre-crash area.
        let pre_crash_ranges: Vec<_> = areas_before
            .iter()
            .map(|a| (a.offset, a.offset + a.len()))
            .collect();
        for _ in 0..40 {
            let p = recovered.alloc(0);
            let in_old_area = pre_crash_ranges
                .iter()
                .any(|&(s, e)| p.offset() >= s && p.offset() < e);
            assert!(
                !in_old_area,
                "recovered allocator handed out a slot from an old area without free_immediate"
            );
        }
    }

    #[test]
    fn for_each_object_enumerates_every_slot() {
        let (_pool, ssmem) = setup();
        for _ in 0..20 {
            ssmem.alloc(0);
        }
        let mut count = 0;
        ssmem.for_each_object(|p| {
            assert!(!p.is_null());
            count += 1;
        });
        let expected: u32 = ssmem.areas().iter().map(|a| a.num_objects).sum();
        assert_eq!(count, expected);
        assert!(count >= 20);
    }

    #[test]
    fn concurrent_allocation_yields_unique_slots() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let cfg = SsmemConfig {
            obj_size: 64,
            area_size: 4096,
            max_threads: 4,
        };
        let ssmem = Arc::new(Ssmem::new(pool, cfg));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let s = Arc::clone(&ssmem);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| s.alloc(tid)).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for p in h.join().unwrap() {
                assert!(all.insert(p), "slot handed out twice");
            }
        }
        assert_eq!(all.len(), 2000);
    }
}

#[cfg(test)]
mod volatile_tests {
    use super::*;
    use pmem::PoolConfig;

    #[test]
    fn volatile_allocator_publishes_no_areas_and_shares_epochs() {
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        let cfg = SsmemConfig {
            obj_size: 64,
            area_size: 1024,
            max_threads: 2,
        };
        let durable = Ssmem::new(Arc::clone(&pool), cfg);
        let volatile = Ssmem::new_volatile(Arc::clone(&pool), cfg, Arc::clone(durable.epoch()));
        for _ in 0..40 {
            let v = volatile.alloc(0);
            assert!(!v.is_null());
        }
        // Only the durable allocator's areas appear in the directory.
        assert!(volatile.areas().is_empty());
        let _ = durable.alloc(0);
        assert_eq!(durable.areas().len(), 1);
        // The two allocators share one epoch manager.
        assert!(Arc::ptr_eq(durable.epoch(), volatile.epoch()));
    }
}
