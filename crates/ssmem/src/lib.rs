//! # ssmem — durable epoch-based memory management for the durable queues
//!
//! All queues in this workspace (like all queues evaluated in the paper,
//! except the PTM-wrapped ones) allocate their nodes through the same
//! memory-management scheme, a durable extension of the `ssmem` epoch-based
//! allocator of David et al. (ASPLOS'15) as adapted by Zuriel et al.
//! (OOPSLA'19) and described in Section 9 of the paper:
//!
//! * Nodes are allocated from **designated areas** of the persistent pool.
//!   Every area is recorded in a persistent directory (at a fixed pool
//!   offset), so a recovery procedure can enumerate every node slot that has
//!   ever been handed out and decide, per slot, whether it belongs to the
//!   resurrected data structure.
//! * When a new area is carved out of the pool it is zeroed and persisted
//!   with asynchronous flushes followed by a **single** SFENCE — this is what
//!   lets UnlinkedQ/LinkedQ rely on freshly allocated nodes having a
//!   persistently-zero `index`/`linked`/`initialized` field without paying a
//!   fence per allocation.
//! * Each thread has its own allocator (bump pointer into its current area
//!   plus a local free list), avoiding synchronisation on the allocation fast
//!   path.
//! * Freed nodes go through **epoch-based reclamation** ([`EpochManager`]):
//!   a retired node returns to a free list only after every thread has passed
//!   through a quiescent state, which is what makes reading a node after
//!   losing a CAS race safe (no use-after-reuse).
//! * After a crash, [`Ssmem::recover`] re-reads the area directory; the data
//!   structure's own recovery then classifies every slot as live or dead and
//!   returns dead slots to the free lists with
//!   [`Ssmem::free_immediate`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod dir;
pub mod epoch;

pub use alloc::{Ssmem, SsmemConfig};
pub use dir::AreaInfo;
pub use epoch::EpochManager;
