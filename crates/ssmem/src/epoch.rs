//! Epoch-based reclamation.
//!
//! A minimal, allocation-free implementation of the classic three-epoch
//! scheme: threads announce the global epoch when they begin an operation
//! ("pin") and clear the announcement when they finish ("unpin"); a retired
//! object may be reused once the global epoch has advanced by two past the
//! epoch in which it was retired, because by then every operation that could
//! have observed it has completed.
//!
//! The manager is shared by the persistent allocator ([`crate::Ssmem`]) and
//! by the volatile-node allocator of the Opt queues, so that a single
//! pin/unpin per queue operation protects both kinds of nodes.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// See the [module documentation](self).
pub struct EpochManager {
    global: CachePadded<AtomicU64>,
    /// Per-thread announcement: `0` when not pinned, otherwise
    /// `(epoch << 1) | 1`.
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl EpochManager {
    /// Creates a manager for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        EpochManager {
            global: CachePadded::new(AtomicU64::new(2)),
            slots: (0..max_threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// The number of thread slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The current global epoch.
    #[inline]
    pub fn current(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// Announces that thread `tid` is starting an operation that may hold
    /// references to shared nodes.
    #[inline]
    pub fn pin(&self, tid: usize) {
        loop {
            let e = self.global.load(Ordering::SeqCst);
            self.slots[tid].store((e << 1) | 1, Ordering::SeqCst);
            // Re-check: if the global epoch moved between the load and the
            // announcement, re-announce so we are never registered in an
            // epoch older than the one we actually observed shared state in.
            if self.global.load(Ordering::SeqCst) == e {
                return;
            }
        }
    }

    /// Announces that thread `tid` finished its operation and holds no more
    /// references to shared nodes.
    #[inline]
    pub fn unpin(&self, tid: usize) {
        self.slots[tid].store(0, Ordering::Release);
    }

    /// Returns `true` if thread `tid` is currently pinned.
    pub fn is_pinned(&self, tid: usize) -> bool {
        self.slots[tid].load(Ordering::Acquire) & 1 == 1
    }

    /// Attempts to advance the global epoch. The epoch advances only if every
    /// pinned thread has announced the current epoch; returns the (possibly
    /// new) global epoch.
    pub fn try_advance(&self) -> u64 {
        let e = self.global.load(Ordering::SeqCst);
        for slot in self.slots.iter() {
            let s = slot.load(Ordering::SeqCst);
            if s & 1 == 1 && (s >> 1) != e {
                return e;
            }
        }
        let _ = self
            .global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.global.load(Ordering::SeqCst)
    }

    /// Returns `true` if an object retired in `retire_epoch` may be reused:
    /// the global epoch has advanced at least two epochs past it.
    #[inline]
    pub fn is_safe_to_reuse(&self, retire_epoch: u64) -> bool {
        self.current() >= retire_epoch + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pin_unpin_toggles_state() {
        let e = EpochManager::new(4);
        assert!(!e.is_pinned(0));
        e.pin(0);
        assert!(e.is_pinned(0));
        e.unpin(0);
        assert!(!e.is_pinned(0));
    }

    #[test]
    fn epoch_advances_when_no_thread_is_pinned() {
        let e = EpochManager::new(4);
        let start = e.current();
        e.try_advance();
        e.try_advance();
        assert_eq!(e.current(), start + 2);
    }

    #[test]
    fn pinned_thread_in_old_epoch_blocks_advancement() {
        let e = EpochManager::new(4);
        e.pin(1); // announces current epoch
        let start = e.current();
        // Thread 1 is pinned in `start`, so the epoch can advance at most
        // once before being blocked by its stale announcement.
        e.try_advance();
        let after_one = e.current();
        e.try_advance();
        e.try_advance();
        assert!(e.current() <= start + 1);
        assert_eq!(e.current(), after_one);
        e.unpin(1);
        e.try_advance();
        e.try_advance();
        assert!(e.current() >= start + 2);
    }

    #[test]
    fn reuse_requires_two_epochs() {
        let e = EpochManager::new(2);
        let retire_epoch = e.current();
        assert!(!e.is_safe_to_reuse(retire_epoch));
        e.try_advance();
        assert!(!e.is_safe_to_reuse(retire_epoch));
        e.try_advance();
        assert!(e.is_safe_to_reuse(retire_epoch));
    }

    #[test]
    fn concurrent_pin_unpin_and_advance() {
        let e = Arc::new(EpochManager::new(8));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    e.pin(tid);
                    std::hint::black_box(e.current());
                    e.unpin(tid);
                    e.try_advance();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All threads unpinned: the epoch must be able to advance.
        let before = e.current();
        e.try_advance();
        assert!(e.current() >= before);
    }
}
